"""Chaos suite: the fault-tolerance contract of the campaign executor.

Every test drives ``run_jobs`` through a deterministic
:class:`~repro.campaign.faults.FaultPlan` — workers are killed, hung,
made to raise, or made to corrupt their results on chosen
``(digest, attempt)`` pairs — and asserts the *semantics*: a crash
costs one attempt and the merged results stay byte-identical, a hung
job dies at the timeout and retries on the seeded backoff schedule, a
poison job quarantines with its traceback while the rest of the
campaign completes, a sick pool degrades to serial, and an interrupted
run resumes from its checkpoint executing only the remainder.

Jobs are ``builtins:dict`` echoes, so the suite tests the machinery,
not the simulator; a full pool spin-up is a few hundred ms.
"""

import os
import pickle
import signal
import time

import pytest

from repro.campaign import (
    Fault,
    FaultPlan,
    ResultCache,
    RetryPolicy,
    RunManifest,
    campaign_digest,
    make_job,
    quarantine_report,
    run_jobs,
)
from repro.campaign.faults import FAULTS_ENV

ECHO = "builtins:dict"


def echo_jobs(n, experiment="chaos"):
    return [
        make_job(experiment, i, ECHO, {"i": i, "payload": f"job-{i}"})
        for i in range(n)
    ]


def fast_retry(max_attempts=3):
    """Real backoff semantics, milliseconds of wall clock."""
    return RetryPolicy(max_attempts=max_attempts, backoff_base_s=0.01)


class ProgressLog:
    def __init__(self):
        self.events = []

    def __call__(self, event, job, done, total):
        self.events.append((event, job.key, done, total))

    def count(self, kind):
        return sum(1 for e in self.events if e[0] == kind)


# ----------------------------------------------------------------------
# crash isolation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("action", ["kill", "exit"])
def test_worker_crash_costs_one_attempt_merge_byte_identical(action):
    jobs = echo_jobs(6)
    victim = jobs[2].digest
    plan = FaultPlan((Fault(victim, 1, action),))

    baseline = run_jobs(jobs, workers=1, retry=fast_retry())
    assert baseline.ok

    log = ProgressLog()
    chaotic = run_jobs(
        jobs, workers=2, retry=fast_retry(), fault_plan=plan, progress=log
    )
    assert chaotic.ok
    assert chaotic.stats.retried == 1
    assert log.count("retried") == 1
    assert log.count("executed") == 6
    # The SIGKILL cost exactly one attempt; the merged results — values
    # and merge order both — match the fault-free serial run exactly.
    merged, expected = (
        o.experiment_results("chaos") for o in (chaotic, baseline)
    )
    assert list(merged) == list(expected)
    assert merged == expected


def test_crash_on_every_attempt_quarantines_without_sinking_campaign():
    jobs = echo_jobs(4)
    victim = jobs[1].digest
    plan = FaultPlan((Fault(victim, 0, "kill"),))

    outcome = run_jobs(
        jobs, workers=2, retry=fast_retry(), fault_plan=plan
    )
    assert not outcome.ok
    [failure] = outcome.failures
    assert failure.digest == victim
    assert not failure.permanent
    assert [a.kind for a in failure.attempts] == ["crash"] * 3
    assert all(a.worker_pid not in (None, os.getpid()) for a in failure.attempts)
    # Everything else completed and merged normally.
    done = outcome.experiment_results("chaos")
    assert sorted(done) == [0, 2, 3]
    assert done[3] == {"i": 3, "payload": "job-3"}


# ----------------------------------------------------------------------
# timeouts
# ----------------------------------------------------------------------
def test_hung_job_is_killed_at_timeout_and_retried():
    jobs = echo_jobs(3)
    victim = jobs[0].digest
    plan = FaultPlan((Fault(victim, 1, "hang"),))

    log = ProgressLog()
    t0 = time.monotonic()
    outcome = run_jobs(
        jobs,
        workers=2,
        retry=fast_retry(),
        timeout_s=0.5,
        fault_plan=plan,
        progress=log,
    )
    wall = time.monotonic() - t0
    assert outcome.ok
    assert outcome.stats.retried == 1
    # The hang sleeps 3600s; the supervisor killed it at ~0.5s.
    assert 0.5 <= wall < 30.0
    assert sorted(outcome.experiment_results("chaos")) == [0, 1, 2]


def test_hang_every_attempt_quarantines_as_timeouts():
    jobs = echo_jobs(2)
    victim = jobs[1].digest
    plan = FaultPlan((Fault(victim, 0, "hang"),))
    outcome = run_jobs(
        jobs,
        workers=2,
        retry=fast_retry(max_attempts=2),
        timeout_s=0.3,
        fault_plan=plan,
    )
    [failure] = outcome.failures
    assert [a.kind for a in failure.attempts] == ["timeout", "timeout"]
    assert "0.3" in failure.attempts[0].detail
    assert not failure.permanent


# ----------------------------------------------------------------------
# retry policy: classification and the seeded backoff schedule
# ----------------------------------------------------------------------
def test_transient_exception_retries_on_seeded_backoff_schedule():
    jobs = echo_jobs(3)
    victim = jobs[2].digest
    plan = FaultPlan((Fault(victim, 0, "raise"),))  # transient, every attempt
    retry = fast_retry(max_attempts=3)

    outcome = run_jobs(jobs, workers=2, retry=retry, fault_plan=plan)
    [failure] = outcome.failures
    assert not failure.permanent
    assert [a.kind for a in failure.attempts] == ["exception"] * 3
    # The recorded backoffs are exactly the policy's deterministic
    # schedule for this digest — reproducible across processes and runs.
    assert [a.backoff_s for a in failure.attempts[:-1]] == retry.schedule(victim)
    assert failure.attempts[-1].backoff_s is None
    assert "RuntimeError" in failure.traceback


def test_permanent_exception_skips_retries_entirely():
    jobs = echo_jobs(3)
    victim = jobs[0].digest
    plan = FaultPlan((Fault(victim, 0, "fail"),))  # ValueError: permanent

    log = ProgressLog()
    outcome = run_jobs(
        jobs, workers=2, retry=fast_retry(), fault_plan=plan, progress=log
    )
    [failure] = outcome.failures
    assert failure.permanent
    assert len(failure.attempts) == 1  # no retry budget burned
    assert log.count("retried") == 0
    assert "ValueError" in failure.traceback
    assert sorted(outcome.experiment_results("chaos")) == [1, 2]

    report = quarantine_report(outcome)
    assert "QUARANTINE (1 job(s))" in report
    assert "ValueError" in report
    assert "permanent" in report


def test_corrupt_payload_detected_by_checksum_and_retried():
    jobs = echo_jobs(3)
    victim = jobs[1].digest
    plan = FaultPlan((Fault(victim, 1, "corrupt"),))
    log = ProgressLog()
    outcome = run_jobs(
        jobs, workers=2, retry=fast_retry(), fault_plan=plan, progress=log
    )
    assert outcome.ok
    assert outcome.stats.retried == 1
    # The corrupted payload never reached the results.
    assert outcome.experiment_results("chaos")[1] == {
        "i": 1, "payload": "job-1",
    }


def test_unpicklable_result_costs_attempts_not_the_campaign():
    jobs = echo_jobs(2) + [
        make_job(
            "chaos", "closure", "repro.campaign.faults:unpicklable_result",
            {"x": 1},
        )
    ]
    outcome = run_jobs(jobs, workers=2, retry=fast_retry(max_attempts=2))
    [failure] = outcome.failures
    assert failure.key == "closure"
    assert [a.kind for a in failure.attempts] == ["unpicklable"] * 2
    assert not failure.permanent
    assert sorted(outcome.experiment_results("chaos")) == [0, 1]


def test_fault_plan_env_hook_round_trips(monkeypatch):
    jobs = echo_jobs(2)
    plan = FaultPlan((Fault(jobs[0].digest, 0, "fail"),))
    assert FaultPlan.from_json(plan.to_json()) == plan
    monkeypatch.setenv(FAULTS_ENV, plan.to_json())
    outcome = run_jobs(jobs, workers=2, retry=fast_retry())
    assert [f.digest for f in outcome.failures] == [jobs[0].digest]


# ----------------------------------------------------------------------
# degradation to serial
# ----------------------------------------------------------------------
def test_pool_sickness_degrades_to_serial_and_completes():
    jobs = echo_jobs(5)
    # Every assignment kills its worker: the pool can never make
    # progress.  max_attempts exceeds the death threshold, so no digest
    # can quarantine before the pool gives up.
    plan = FaultPlan((Fault("", 0, "kill"),))
    outcome = run_jobs(
        jobs, workers=2, retry=fast_retry(max_attempts=5), fault_plan=plan
    )
    # Degraded to in-process execution, where fault plans do not apply:
    # the campaign still completed every job.
    assert outcome.stats.degraded_reason is not None
    assert "worker deaths" in outcome.stats.degraded_reason
    assert outcome.ok
    assert sorted(outcome.experiment_results("chaos")) == [0, 1, 2, 3, 4]
    assert "degraded" in outcome.stats.summary()


# ----------------------------------------------------------------------
# interrupt and resume
# ----------------------------------------------------------------------
class InterruptAfter:
    """Progress hook that raises KeyboardInterrupt after N completions."""

    def __init__(self, n):
        self.n = n
        self.inner = ProgressLog()

    def __call__(self, event, job, done, total):
        self.inner(event, job, done, total)
        if event in ("executed", "cached") and done >= self.n:
            raise KeyboardInterrupt


@pytest.mark.parametrize("workers", [1, 2])
def test_interrupt_flushes_finished_results_and_reports_partial(
    tmp_path, workers
):
    jobs = echo_jobs(6)
    cache = ResultCache(tmp_path / "cache")
    outcome = run_jobs(
        jobs,
        workers=workers,
        cache=cache,
        retry=fast_retry(),
        progress=InterruptAfter(2),
    )
    assert outcome.stats.interrupted
    assert not outcome.ok
    assert outcome.stats.wall_s > 0.0
    assert "interrupted" in outcome.stats.summary()
    finished = outcome.experiment_results("chaos")
    assert len(finished) >= 2
    # Every finished digest was flushed to the cache before the
    # interrupt surfaced.
    for job in jobs:
        if job.key in finished:
            hit, value = cache.get(job.digest)
            assert hit and value == finished[job.key]


def test_resume_executes_only_the_remainder(tmp_path):
    jobs = echo_jobs(6)
    cache = ResultCache(tmp_path / "cache")
    digest = campaign_digest(j.digest for j in jobs)
    manifest = RunManifest(tmp_path / "runs" / "m.json", digest)

    first = run_jobs(
        jobs,
        workers=1,
        cache=cache,
        manifest=manifest,
        retry=fast_retry(),
        progress=InterruptAfter(2),
    )
    assert first.stats.interrupted
    done_first = first.stats.executed
    assert 0 < done_first < 6

    # Resume: the manifest knows what completed; only the remainder
    # executes, and the merged outcome covers the full campaign.
    reloaded = RunManifest.load(tmp_path / "runs" / "m.json", digest)
    assert len(reloaded.completed) == done_first
    log = ProgressLog()
    second = run_jobs(
        jobs,
        workers=1,
        cache=cache,
        manifest=reloaded,
        retry=fast_retry(),
        progress=log,
    )
    assert second.ok
    assert log.count("executed") == 6 - done_first
    assert log.count("cached") == done_first
    assert sorted(second.experiment_results("chaos")) == list(range(6))


def test_resume_skips_known_failures_without_burning_attempts(tmp_path):
    jobs = echo_jobs(4)
    victim = jobs[3].digest
    plan = FaultPlan((Fault(victim, 0, "fail"),))
    cache = ResultCache(tmp_path / "cache")
    digest = campaign_digest(j.digest for j in jobs)
    manifest = RunManifest(tmp_path / "runs" / "m.json", digest)

    first = run_jobs(
        jobs,
        workers=2,
        cache=cache,
        manifest=manifest,
        retry=fast_retry(),
        fault_plan=plan,
    )
    assert [f.digest for f in first.failures] == [victim]

    # --resume semantics: the prior quarantine is replayed (with its
    # recorded attempts) and nothing is re-executed.
    reloaded = RunManifest.load(tmp_path / "runs" / "m.json", digest)
    assert set(reloaded.failed) == {victim}
    log = ProgressLog()
    second = run_jobs(
        jobs,
        workers=2,
        cache=cache,
        manifest=reloaded,
        retry=fast_retry(),
        fault_plan=plan,
        skip_failed=set(reloaded.failed),
        progress=log,
    )
    assert log.count("executed") == 0
    assert log.count("skipped") == 1
    assert second.stats.skipped == 1
    [replayed] = second.failures
    assert replayed.digest == victim
    assert replayed.permanent
    assert [a.kind for a in replayed.attempts] == ["exception"]


# ----------------------------------------------------------------------
# cache integrity under chaos
# ----------------------------------------------------------------------
def test_corrupted_cache_entry_is_a_miss_and_reexecutes(tmp_path):
    jobs = echo_jobs(2)
    cache = ResultCache(tmp_path / "cache")
    run_jobs(jobs, workers=1, cache=cache)

    # Flip one byte of one entry's payload: the checksum catches it.
    path = cache.path_for(jobs[0].digest)
    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0xFF
    path.write_bytes(bytes(blob))

    total, bad = ResultCache(tmp_path / "cache").verify_summary()
    assert total == 2
    assert [(d, s) for d, s, _ in bad] == [(jobs[0].digest, "corrupt")]

    log = ProgressLog()
    warm = run_jobs(jobs, workers=1, cache=cache, progress=log)
    assert warm.ok
    assert log.count("cached") == 1  # the intact entry
    assert log.count("executed") == 1  # the corrupted one, refreshed
    hit, value = cache.get(jobs[0].digest)
    assert hit and value == {"i": 0, "payload": "job-0"}


def test_stale_tmp_files_swept_on_open(tmp_path):
    root = tmp_path / "cache"
    cache = ResultCache(root)
    cache.put("ab" + "0" * 62, {"x": 1})

    sub = root / "ab"
    dead = sub / ".entry.pkl.999999.tmp"  # pid that cannot be alive
    dead.write_bytes(b"orphaned partial write")
    live = sub / f".entry.pkl.{os.getpid()}.tmp"  # a live writer's temp
    live.write_bytes(b"in-flight write")

    reopened = ResultCache(root)
    assert reopened.swept_tmp == 1
    assert not dead.exists()
    assert live.exists()  # never yank a live writer's temp
    hit, _ = reopened.get("ab" + "0" * 62)
    assert hit


# ----------------------------------------------------------------------
# determinism of the machinery itself
# ----------------------------------------------------------------------
def test_chaotic_campaign_is_deterministic_end_to_end():
    jobs = echo_jobs(5)
    plan = FaultPlan(
        (
            Fault(jobs[0].digest, 1, "kill"),
            Fault(jobs[2].digest, 0, "raise"),
            Fault(jobs[4].digest, 1, "corrupt"),
        )
    )

    def one_run():
        out = run_jobs(
            jobs, workers=2, retry=fast_retry(), fault_plan=plan
        )
        return (
            pickle.dumps(out.experiment_results("chaos")),
            [(f.digest, [a.kind for a in f.attempts]) for f in out.failures],
            out.stats.retried,
        )

    assert one_run() == one_run()
