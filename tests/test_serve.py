"""``repro serve``: ScenarioSpec-over-HTTP against the result store.

The contract under test: a POSTed spec renders byte-identical to the
``repro scenario run`` CLI path, a repeat request is served from the
store with zero executions, and the store a CLI sweep warmed answers
serve requests (and vice versa) because both key on the same job
digest.
"""

import contextlib
import io
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.campaign.store import ResultStore
from repro.serve import make_server

#: One cheap spec, reused across tests (each test gets its own store).
FAMILY = "churn"
OVERRIDES = {"seconds": 0.5, "seed": 3}


@pytest.fixture()
def server(tmp_path):
    store = ResultStore(tmp_path / "store")
    srv = make_server(store)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    host, port = srv.server_address[:2]
    try:
        yield srv, f"http://{host}:{port}", store
    finally:
        srv.shutdown()
        srv.server_close()


def post(base, payload, path="/run"):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    return urllib.request.urlopen(request, timeout=30)


def get(base, path):
    return urllib.request.urlopen(base + path, timeout=30)


def cli_render(family, overrides):
    """What ``python -m repro scenario run`` prints for this spec."""
    from repro.scenario.cli import main as scenario_main

    args = ["run", family] + [
        f"--set={k}={v}" for k, v in overrides.items()
    ]
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        assert scenario_main(args) == 0
    return buffer.getvalue().encode("utf-8")


# ----------------------------------------------------------------------
# the round-trip contract
# ----------------------------------------------------------------------
def test_cold_post_renders_byte_identical_to_cli(server):
    _, base, _ = server
    response = post(base, {"family": FAMILY, "overrides": OVERRIDES})
    body = response.read()
    assert response.headers["X-Repro-Cache"] == "miss"
    assert response.headers["X-Repro-Executed"] == "1"
    assert len(response.headers["X-Repro-Digest"]) == 64
    assert body == cli_render(FAMILY, OVERRIDES)


def test_warm_post_serves_from_store_with_zero_executions(server):
    _, base, _ = server
    payload = {"family": FAMILY, "overrides": OVERRIDES}
    cold = post(base, payload)
    cold_body = cold.read()
    warm = post(base, payload)
    assert warm.headers["X-Repro-Cache"] == "hit"
    assert warm.headers["X-Repro-Executed"] == "0"
    assert warm.headers["X-Repro-Digest"] == cold.headers["X-Repro-Digest"]
    assert warm.read() == cold_body


def test_full_spec_json_coalesces_with_family_form(server):
    from repro.scenario.codec import spec_to_json
    from repro.scenario.registry import build_spec

    _, base, _ = server
    cold = post(base, {"family": FAMILY, "overrides": OVERRIDES})
    cold_body = cold.read()
    spec = build_spec(FAMILY, **OVERRIDES)
    again = post(base, {"spec": spec_to_json(spec)})
    # Same spec content -> same digest -> store hit, not a re-run.
    assert again.headers["X-Repro-Cache"] == "hit"
    assert again.read() == cold_body


def test_cli_sweep_warms_the_serve_store(server, tmp_path):
    from repro.scenario.cli import main as scenario_main

    _, base, store = server
    args = [
        "sweep", FAMILY, "--jobs", "1", "--quiet",
        "--cache-dir", str(store.root),
    ] + [f"--set={k}={v}" for k, v in OVERRIDES.items()]
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        assert scenario_main(args) == 0
    response = post(base, {"family": FAMILY, "overrides": OVERRIDES})
    assert response.headers["X-Repro-Cache"] == "hit"
    assert response.headers["X-Repro-Executed"] == "0"


def test_progress_streaming_carries_the_same_render(server):
    _, base, _ = server
    plain = post(base, {"family": FAMILY, "overrides": OVERRIDES}).read()
    streamed = post(
        base,
        {"family": FAMILY, "overrides": OVERRIDES},
        path="/run?progress=1",
    ).read()
    progress_lines = [
        line for line in streamed.splitlines() if line.startswith(b"#")
    ]
    assert progress_lines  # at least the digest/cache trailer
    payload = b"".join(
        line + b"\n"
        for line in streamed.splitlines()
        if not line.startswith(b"#")
    )
    assert payload == plain


# ----------------------------------------------------------------------
# side endpoints
# ----------------------------------------------------------------------
def test_healthz_query_stats(server):
    _, base, _ = server
    assert get(base, "/healthz").read() == b"ok\n"
    post(base, {"family": FAMILY, "overrides": OVERRIDES}).read()
    rows = json.loads(get(base, f"/query?family={FAMILY}").read())
    assert len(rows) == 1
    digest, meta = rows[0]
    assert meta["family"] == FAMILY and meta["experiment"] == "scenario"
    assert json.loads(get(base, "/query?family=nonesuch").read()) == []
    stats = json.loads(get(base, "/stats").read())
    assert stats["store_entries"] == 1
    assert stats["executed"] == 1


# ----------------------------------------------------------------------
# error handling: bad requests never kill the server
# ----------------------------------------------------------------------
def expect_error(base, payload, status, path="/run"):
    with pytest.raises(urllib.error.HTTPError) as err:
        post(base, payload, path=path)
    assert err.value.code == status
    return err.value.read().decode()


def test_error_paths(server):
    _, base, _ = server
    assert "unknown scenario family" in expect_error(
        base, {"family": "nonesuch"}, 404
    )
    assert "either 'spec' or 'family'" in expect_error(base, {}, 400)
    expect_error(base, {"family": FAMILY, "overrides": {"bogus": 1}}, 400)
    expect_error(base, [1, 2, 3], 400)  # body must be an object
    # Malformed raw body
    request = urllib.request.Request(
        base + "/run", data=b"{not json", method="POST"
    )
    with pytest.raises(urllib.error.HTTPError) as err:
        urllib.request.urlopen(request, timeout=30)
    assert err.value.code == 400
    # Unknown endpoints
    with pytest.raises(urllib.error.HTTPError) as err:
        get(base, "/nonesuch")
    assert err.value.code == 404
    # The server is still alive and serving after all of that.
    assert get(base, "/healthz").read() == b"ok\n"


def test_spec_decode_refuses_untrusted_dataclass(server):
    _, base, _ = server
    hostile = {
        "spec": {
            "@dataclass": ["subprocess:Popen", [["args", "x"]]],
        }
    }
    message = expect_error(base, hostile, 400)
    assert "refusing dataclass path" in message


def test_spec_decode_refuses_in_package_non_dataclass(server):
    """An in-package path passes the prefix gate but must still be
    refused unless it resolves to a dataclass — a request body may not
    invoke arbitrary repro.* callables."""
    _, base, _ = server
    hostile = {
        "spec": {
            "@dataclass": ["repro.campaign.job:freeze", [["value", 1]]],
        }
    }
    message = expect_error(base, hostile, 400)
    assert "not a dataclass" in message


def test_streaming_error_still_terminates_the_chunked_body(server):
    """An unexpected exception after the chunked headers are on the
    wire must surface as a '# error:' chunk plus the 0-chunk
    terminator — never a second status line mid-stream."""
    srv, base, _ = server
    state = srv.repro_state
    original = state.run

    def boom(spec, progress=None):
        raise RuntimeError("kaboom mid-stream")

    state.run = boom
    try:
        response = post(
            base,
            {"family": FAMILY, "overrides": OVERRIDES},
            path="/run?progress=1",
        )
        body = response.read()  # only returns if the terminator arrived
    finally:
        state.run = original
    assert b"# error: RuntimeError: kaboom mid-stream" in body
    assert get(base, "/healthz").read() == b"ok\n"
