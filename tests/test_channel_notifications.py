"""Tests for the channel's snapshot/subscription notification paths."""

import pytest

from repro.channel import Channel
from repro.mac.frames import BROADCAST, Frame, FrameType
from repro.sim import Simulator


class RecordingListener:
    def __init__(self, address):
        self.address = address
        self.busy_events = []
        self.idle_events = []
        self.frames = []

    def on_busy(self, busy_start):
        self.busy_events.append(busy_start)

    def on_idle(self, idle_start):
        self.idle_events.append(idle_start)

    def on_frame_end(self, frame, corrupted):
        self.frames.append((frame, corrupted))


def data_frame(src, dst, size=1500, rate=11.0):
    return Frame(FrameType.DATA, src, dst, size, rate)


def setup(n=3):
    sim = Simulator(seed=1)
    channel = Channel(sim)
    listeners = [RecordingListener(f"n{i}") for i in range(n)]
    for listener in listeners:
        channel.attach(listener)
    return sim, channel, listeners


# ----------------------------------------------------------------------
# carrier subscription
# ----------------------------------------------------------------------
def test_listeners_subscribed_by_default():
    sim, channel, (a, b, c) = setup()
    channel.transmit(data_frame("n0", "n1"), 100.0)
    sim.run()
    for listener in (a, b, c):
        assert listener.busy_events == [0.0]
        assert listener.idle_events == [100.0]


def test_unsubscribed_listener_skips_carrier_but_not_frames():
    sim, channel, (a, b, c) = setup()
    channel.carrier_unsubscribe(c)
    frame = data_frame("n0", "n1")
    channel.transmit(frame, 100.0)
    sim.run()
    assert c.busy_events == [] and c.idle_events == []
    assert b.busy_events == [0.0]
    assert (frame, False) in c.frames  # frame-end unaffected


def test_resubscribe_restores_notifications():
    sim, channel, (a, b, c) = setup()
    channel.carrier_unsubscribe(b)
    channel.transmit(data_frame("n0", "n1"), 50.0)
    sim.run()
    channel.carrier_subscribe(b)
    channel.transmit(data_frame("n0", "n1"), 50.0)  # starts at t=50
    sim.run()
    assert b.busy_events == [50.0]
    assert b.idle_events == [100.0]


def test_unsubscribe_is_idempotent():
    sim, channel, (a, b, c) = setup()
    channel.carrier_unsubscribe(b)
    channel.carrier_unsubscribe(b)
    channel.carrier_subscribe(b)
    channel.carrier_subscribe(b)
    channel.transmit(data_frame("n0", "n1"), 10.0)
    sim.run()
    assert b.busy_events == [0.0]


def test_notification_order_is_attach_order_after_churn():
    sim, channel, listeners = setup(4)
    order = []
    for listener in listeners:
        listener.on_busy = (
            lambda start, addr=listener.address: order.append(addr)
        )
    # Churn the subscription set: drop and re-add out of attach order.
    for listener in (listeners[2], listeners[0], listeners[3]):
        channel.carrier_unsubscribe(listener)
    for listener in (listeners[3], listeners[0], listeners[2]):
        channel.carrier_subscribe(listener)
    channel.transmit(data_frame("n0", "n1"), 10.0)
    sim.run()
    assert order == ["n0", "n1", "n2", "n3"]


def test_carrier_busy_and_idle_start_track_medium():
    sim, channel, listeners = setup()
    assert not channel.carrier_busy
    assert channel.idle_start == 0.0
    channel.transmit(data_frame("n0", "n1"), 100.0)
    assert channel.carrier_busy
    sim.run()
    assert not channel.carrier_busy
    assert channel.idle_start == 100.0


def test_carrier_busy_holds_during_frame_end_broadcast():
    # During the frame-end notifications of the transmission that
    # empties the medium, carrier_busy must still read True (the idle
    # notification has not gone out yet).
    sim = Simulator(seed=1)
    channel = Channel(sim)
    seen = []

    class Probe(RecordingListener):
        def on_frame_end(self, frame, corrupted):
            seen.append((channel.busy, channel.carrier_busy))

    channel.attach(RecordingListener("n0"))
    channel.attach(Probe("n1"))
    channel.transmit(data_frame("n0", "n1"), 100.0)
    sim.run()
    assert seen == [(False, True)]


# ----------------------------------------------------------------------
# filtered frame-end delivery
# ----------------------------------------------------------------------
def test_filtered_listener_hears_own_unicast_only_when_involved():
    sim, channel, (a, b, c) = setup()
    channel.frame_end_filtered(c)
    to_b = data_frame("n0", "n1")
    channel.transmit(to_b, 100.0)
    sim.run()
    assert to_b not in [f for f, _ in c.frames]  # clean, not for c
    to_c = data_frame("n0", "n2")
    channel.transmit(to_c, 100.0)
    sim.run()
    assert (to_c, False) in c.frames  # destination always hears it


def test_filtered_listener_hears_broadcast_and_collisions():
    sim, channel, (a, b, c) = setup()
    channel.frame_end_filtered(c)
    bcast = data_frame("n0", BROADCAST)
    channel.transmit(bcast, 100.0)
    sim.run()
    assert (bcast, False) in c.frames
    f1 = data_frame("n0", "n1")
    f2 = data_frame("n1", "n0")
    channel.transmit(f1, 100.0)
    channel.transmit(f2, 100.0)
    sim.run()
    corrupted_views = [f for f, corrupted in c.frames if corrupted]
    assert f1 in corrupted_views and f2 in corrupted_views


def test_eifs_mark_delivers_next_clean_frame_then_unmark_stops():
    sim, channel, (a, b, c) = setup()
    channel.frame_end_filtered(c)
    channel.eifs_mark(c)
    first = data_frame("n0", "n1")
    channel.transmit(first, 100.0)
    sim.run()
    assert (first, False) in c.frames  # marked: hears the clean frame
    channel.eifs_unmark(c)
    second = data_frame("n0", "n1")
    channel.transmit(second, 100.0)
    sim.run()
    assert second not in [f for f, _ in c.frames]


def test_unfiltered_listeners_hear_everything():
    sim, channel, (a, b, c) = setup()
    channel.frame_end_filtered(c)
    frame = data_frame("n1", "n2")
    channel.transmit(frame, 100.0)
    sim.run()
    # a is neither src, dst nor filtered: still notified (observer).
    assert (frame, False) in a.frames


def test_attach_duplicate_listener_still_rejected():
    sim, channel, listeners = setup(1)
    with pytest.raises(ValueError):
        channel.attach(listeners[0])
