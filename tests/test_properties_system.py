"""System-level property tests: conservation and fairness invariants.

These run short random scenarios and check invariants that must hold
regardless of parameters — the discrete-event analogue of the paper's
Section 2 identities.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.node import Cell
from repro.queueing import DrrScheduler

RATES = [1.0, 2.0, 5.5, 11.0]


@settings(max_examples=10, deadline=None)
@given(
    rates=st.lists(st.sampled_from(RATES), min_size=1, max_size=4),
    scheduler=st.sampled_from(["fifo", "rr", "drr", "tbr"]),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_downlink_udp_conservation(rates, scheduler, seed):
    """Delivered bytes never exceed offered bytes; occupancy shares sum
    to 1; attributed airtime never exceeds wall-clock time."""
    cell = Cell(seed=seed, scheduler=scheduler)
    flows = []
    for i, rate in enumerate(rates):
        station = cell.add_station(f"n{i}", rate_mbps=rate)
        flows.append(cell.udp_flow(station, direction="down", rate_mbps=1.0))
    cell.run(seconds=1.0)
    for flow in flows:
        offered = flow.sender.sent * flow.sender.packet_bytes
        assert flow.stats.bytes_delivered <= offered
    shares = cell.occupancy_shares()
    if any(v > 0 for v in shares.values()):
        assert sum(shares.values()) == pytest.approx(1.0)
    # Downlink-only: the AP is the sole data transmitter (stations send
    # nothing), so attributed airtime cannot overlap itself.
    assert cell.usage.total_occupancy_us() <= cell.sim.now + 1e-6


@settings(max_examples=8, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=100, max_value=1500),
                   min_size=2, max_size=4),
    quantum=st.integers(min_value=200, max_value=2000),
)
def test_drr_byte_fairness_random_sizes(sizes, quantum):
    """DRR equalizes bytes across backlogged queues for any size mix."""
    sched = DrrScheduler(quantum_bytes=quantum, per_station_capacity=10_000)

    class Pkt:
        def __init__(self, station, size):
            self.station = station
            self.size_bytes = size
            self.mac_dst = None

    per_station_target = 60_000
    for i, size in enumerate(sizes):
        name = f"s{i}"
        sched.associate(name)
        total = 0
        while total < per_station_target + 1500:
            sched.enqueue(Pkt(name, size))
            total += size

    served = {f"s{i}": 0 for i in range(len(sizes))}
    # Stop while every queue is still backlogged so fairness applies.
    for _ in range(10_000):
        if any(v >= per_station_target for v in served.values()):
            break
        pkt = sched.dequeue()
        if pkt is None:
            break
        served[pkt.station] += pkt.size_bytes
    values = list(served.values())
    assert max(values) - min(values) <= max(quantum, max(sizes)) + max(sizes)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_tbr_charge_conservation(seed):
    """Every token spent corresponds to a charged exchange: lifetime
    spend equals the sum of per-station spends, and no station's spend
    rate exceeds its fills by more than one bucket of slack."""
    cell = Cell(seed=seed, scheduler="tbr")
    n1 = cell.add_station("n1", rate_mbps=1.0)
    n2 = cell.add_station("n2", rate_mbps=11.0)
    cell.udp_flow(n1, direction="down", rate_mbps=2.0)
    cell.udp_flow(n2, direction="down", rate_mbps=2.0)
    cell.run(seconds=2.0)
    for bucket in cell.scheduler.buckets.values():
        slack = bucket.depth_us + cell.scheduler.config.initial_tokens_us
        assert bucket.spent_us <= bucket.filled_us + slack + 1e-6


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    direction=st.sampled_from(["up", "down"]),
)
def test_tcp_no_phantom_bytes(seed, direction):
    """TCP never delivers bytes that were not sent, and sequence space
    is contiguous at the receiver."""
    cell = Cell(seed=seed)
    station = cell.add_station("n1", rate_mbps=11.0)
    flow = cell.tcp_flow(station, direction=direction)
    cell.run(seconds=1.0)
    sender, receiver = flow.sender, flow.receiver
    assert receiver.rcv_nxt <= sender.snd_nxt
    assert flow.stats.bytes_delivered == receiver.rcv_nxt


def test_occupancy_roughly_bounded_by_wall_clock_under_load():
    # Collided exchanges charge *both* senders (the paper counts failed
    # transmissions toward the sender's occupancy), so with five
    # contenders the attributed total may slightly exceed wall-clock
    # time — but only by the collision overlap, never by much.
    cell = Cell(seed=11, scheduler="fifo")
    for i in range(5):
        st_ = cell.add_station(f"n{i}", rate_mbps=RATES[i % 4])
        cell.tcp_flow(st_, direction="up")
    cell.run(seconds=3.0)
    total = cell.usage.total_occupancy_us()
    assert total <= 1.1 * cell.sim.now
    assert total > 0.5 * cell.sim.now  # and the channel was actually busy
