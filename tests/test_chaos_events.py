"""AP outage and station crash: the protocol fault events end to end.

``ApOutageEvent`` must tear the whole cell down (associations dropped,
queues flushed, the in-flight frame aborted) and bring every survivor
back through the real re-association path with seeded jitter;
``StationCrashEvent`` must vanish a station *without* the courtesy of
a disassociation, leaving the AP-side inactivity reaper to detect the
dead peer from retry exhaustions and drive the normal teardown so the
survivors' token shares renormalize.  Everything stays deterministic
and conserves pooled packets.
"""

import pytest

from repro.scenario import (
    ApOutageEvent,
    FlowSpec,
    ReaperSpec,
    RejoinEvent,
    ScenarioSpec,
    StationCrashEvent,
    StationSpec,
    TrafficOffEvent,
)
from repro.scenario.builder import ScenarioRuntime
from repro.scenario.runner import run_spec


def _outage_spec(name, *, seconds=4.0, at_s=1.5, duration_s=0.5, seed=1,
                 scheduler="tbr"):
    return ScenarioSpec(
        name=name,
        scheduler=scheduler,
        stations=(
            StationSpec("fast", rate_mbps=11.0),
            StationSpec("slow", rate_mbps=1.0),
        ),
        flows=(
            FlowSpec(station="fast", kind="tcp", direction="up"),
            FlowSpec(station="slow", kind="udp", direction="down",
                     rate_mbps=2.0),
        ),
        timeline=(ApOutageEvent(at_s=at_s, duration_s=duration_s),),
        seconds=seconds,
        warmup_seconds=0.5,
        seed=seed,
    )


def _crash_spec(name, *, reaper, seconds=5.0, at_s=1.0, seed=1):
    return ScenarioSpec(
        name=name,
        scheduler="tbr",
        stations=(
            StationSpec("survivor", rate_mbps=11.0),
            StationSpec("victim", rate_mbps=1.0),
        ),
        flows=(
            FlowSpec(station="survivor", kind="tcp", direction="up"),
            # Downlink at the victim keeps the AP transmitting at the
            # corpse — the retry exhaustions are the reaper's evidence.
            FlowSpec(station="victim", kind="udp", direction="down",
                     rate_mbps=2.0),
        ),
        timeline=(StationCrashEvent(at_s=at_s, station="victim"),),
        seconds=seconds,
        warmup_seconds=0.5,
        seed=seed,
        reaper=reaper,
    )


# ----------------------------------------------------------------------
# AP outage
# ----------------------------------------------------------------------
def test_outage_drops_everyone_then_recovers_everyone():
    runtime = ScenarioRuntime(_outage_spec("outage-recovery"))
    runtime.run()
    cell = runtime.cell
    # Both stations re-associated: present in the cell, bucketed in
    # the regulator, and the rate sum renormalized to exactly 1.
    assert sorted(cell.stations) == ["fast", "slow"]
    assert sorted(cell.scheduler.buckets) == ["fast", "slow"]
    total = sum(b.rate for b in cell.scheduler.buckets.values())
    assert total == pytest.approx(1.0)
    assert runtime.pool_leaked() == 0
    # Traffic moved on both sides of the blackout: the flows restarted
    # under fresh @r1 names by the rejoin machinery.
    tput = cell.throughputs_mbps()
    assert tput.get("fast/tcp-up@r1", 0.0) > 0.0
    assert tput.get("slow/udp-down@r1", 0.0) > 0.0


def test_outage_window_is_silent():
    # Compare against the same cell without the outage: the blackout
    # must actually cost throughput (the AP was really gone).
    dark = run_spec(_outage_spec("outage-on", duration_s=1.5))
    clean = run_spec(
        ScenarioSpec(
            name="outage-off",
            scheduler="tbr",
            stations=_outage_spec("x").stations,
            flows=_outage_spec("x").flows,
            seconds=4.0,
            warmup_seconds=0.5,
            seed=1,
        )
    )
    assert dark.total_mbps < clean.total_mbps * 0.8
    assert dark.pool_leaked == 0


def test_outage_aborts_in_flight_frame_without_leaking():
    # A saturating downlink makes it near-certain the AP is mid-frame
    # when the outage hits; the abort path must release the packet.
    spec = ScenarioSpec(
        name="outage-abort",
        scheduler="tbr",
        stations=(StationSpec("dl", rate_mbps=1.0),),
        flows=(
            FlowSpec(station="dl", kind="udp", direction="down",
                     rate_mbps=6.0),
        ),
        timeline=(ApOutageEvent(at_s=1.0, duration_s=0.5),),
        seconds=3.0,
        warmup_seconds=0.5,
        seed=3,
    )
    result = run_spec(spec, sanitize=True)
    assert result.pool_leaked == 0


def test_outage_rejoin_jitter_is_seeded():
    a = run_spec(_outage_spec("outage-det", seed=5))
    b = run_spec(_outage_spec("outage-det", seed=5))
    c = run_spec(_outage_spec("outage-det", seed=6))
    assert a.throughput_mbps == b.throughput_mbps
    assert a.events_by_category == b.events_by_category
    # A different seed draws different rejoin delays (and traffic),
    # so the runs genuinely diverge.
    assert a.events_executed != c.events_executed


def test_outage_validation_rejects_overlaps_and_shadowed_events():
    base = _outage_spec("bad-outage")
    with pytest.raises(ValueError, match="duration_s"):
        ScenarioSpec(
            name="bad",
            stations=base.stations,
            flows=base.flows,
            timeline=(ApOutageEvent(at_s=1.0, duration_s=0.0),),
            seconds=4.0,
        ).validate()
    # Two outages whose exclusion windows overlap.
    with pytest.raises(ValueError, match="overlap"):
        ScenarioSpec(
            name="bad",
            stations=base.stations,
            flows=base.flows,
            timeline=(
                ApOutageEvent(at_s=1.0, duration_s=1.0),
                ApOutageEvent(at_s=1.5, duration_s=1.0),
            ),
            seconds=5.0,
        ).validate()
    # Any other event inside an outage's exclusion window (the AP is
    # down and stations are still trickling back — nothing can fire).
    with pytest.raises(ValueError, match="exclusion window"):
        ScenarioSpec(
            name="bad",
            stations=base.stations,
            flows=base.flows,
            timeline=(
                ApOutageEvent(at_s=1.0, duration_s=1.0),
                TrafficOffEvent(at_s=1.5, station="fast"),
            ),
            seconds=5.0,
        ).validate()


# ----------------------------------------------------------------------
# station crash + inactivity reaper
# ----------------------------------------------------------------------
def test_crash_without_reaper_strands_the_token_rate():
    # Documents the failure mode the reaper (and the sanitizer's
    # strand check) exist for: the bucket outlives the station.
    # Explicitly unsanitized — under REPRO_SANITIZE=1 this exact run
    # is the strand violation test_sanitizer.py expects to raise.
    runtime = ScenarioRuntime(
        _crash_spec("crash-stranded", reaper=None), sanitize=False
    )
    runtime.run()
    cell = runtime.cell
    assert "victim" not in cell.stations
    assert "victim" in cell.scheduler.buckets  # stranded
    live = sum(
        b.rate for n, b in cell.scheduler.buckets.items()
        if n in cell.stations
    )
    assert live < 0.99  # survivors are squeezed below their fair share
    assert runtime.pool_leaked() == 0


def test_reaper_detects_crash_and_renormalizes_survivors():
    runtime = ScenarioRuntime(
        _crash_spec(
            "crash-reaped",
            reaper=ReaperSpec(exhaustion_threshold=2, idle_timeout_s=0.4),
        ),
        sanitize=True,
    )
    runtime.run()
    cell = runtime.cell
    reaper = cell.ap.reaper
    assert reaper is not None and reaper.reap_count == 1
    # The dead peer went through the full disassociation path: bucket
    # retired, survivor's share renormalized to 1/n_active = 1.
    assert "victim" not in cell.scheduler.buckets
    assert cell.scheduler.buckets["survivor"].rate == pytest.approx(1.0)
    assert runtime.pool_leaked() == 0


def test_reaper_spares_merely_quiet_stations():
    # Quiet is not dead: a station whose traffic goes silent (but whose
    # MAC still ACKs the occasional downlink frame) must never be
    # reaped — the reaper needs retry *exhaustions*, not mere idleness.
    spec = ScenarioSpec(
        name="quiet-not-dead",
        scheduler="tbr",
        stations=(
            StationSpec("talker", rate_mbps=11.0),
            StationSpec("quiet", rate_mbps=11.0),
        ),
        flows=(
            FlowSpec(station="talker", kind="tcp", direction="up"),
            FlowSpec(station="quiet", kind="tcp", direction="up"),
        ),
        timeline=(TrafficOffEvent(at_s=1.0, station="quiet"),),
        seconds=5.0,
        warmup_seconds=0.5,
        seed=2,
        reaper=ReaperSpec(exhaustion_threshold=2, idle_timeout_s=0.4),
    )
    runtime = ScenarioRuntime(spec, sanitize=True)
    runtime.run()
    cell = runtime.cell
    assert cell.ap.reaper.reap_count == 0
    assert "quiet" in cell.stations
    assert "quiet" in cell.scheduler.buckets


def test_crash_runs_are_deterministic():
    reaper = ReaperSpec(exhaustion_threshold=2, idle_timeout_s=0.4)
    a = run_spec(_crash_spec("crash-det", reaper=reaper))
    b = run_spec(_crash_spec("crash-det", reaper=reaper))
    assert a.throughput_mbps == b.throughput_mbps
    assert a.events_by_category == b.events_by_category


def test_crashed_station_cannot_rejoin():
    base = _crash_spec("bad-crash", reaper=None)
    with pytest.raises(ValueError, match="crashed"):
        ScenarioSpec(
            name="bad",
            scheduler="tbr",
            stations=base.stations,
            flows=base.flows,
            timeline=(
                StationCrashEvent(at_s=1.0, station="victim"),
                RejoinEvent(at_s=2.0, station="victim"),
            ),
            seconds=4.0,
        ).validate()


def test_reaper_spec_validation():
    with pytest.raises(ValueError, match="exhaustion_threshold"):
        ReaperSpec(exhaustion_threshold=0).validate()
    with pytest.raises(ValueError, match="idle_timeout_s"):
        ReaperSpec(idle_timeout_s=0.0).validate()
