"""Tests for PeriodicTimer and generator processes."""

import pytest

from repro.sim import PeriodicTimer, Process, Simulator, Sleep, waituntil


# ----------------------------------------------------------------------
# PeriodicTimer
# ----------------------------------------------------------------------
def test_timer_fires_every_period():
    sim = Simulator()
    times = []
    timer = PeriodicTimer(sim, 10.0, lambda elapsed: times.append(sim.now))
    timer.start()
    sim.run(until=35.0)
    assert times == [10.0, 20.0, 30.0]


def test_timer_reports_elapsed_since_last_fire():
    sim = Simulator()
    elapsed = []
    timer = PeriodicTimer(sim, 7.0, elapsed.append)
    timer.start()
    sim.run(until=22.0)
    assert elapsed == [7.0, 7.0, 7.0]


def test_timer_stop_prevents_fires():
    sim = Simulator()
    count = []
    timer = PeriodicTimer(sim, 10.0, lambda e: count.append(e))
    timer.start()
    sim.run(until=15.0)
    timer.stop()
    sim.run(until=100.0)
    assert len(count) == 1


def test_timer_restart_resets_phase():
    sim = Simulator()
    times = []
    timer = PeriodicTimer(sim, 10.0, lambda e: times.append(sim.now))
    timer.start()
    sim.run(until=5.0)
    timer.start()  # restart at t=5
    sim.run(until=16.0)
    assert times == [15.0]


def test_timer_rejects_bad_period():
    sim = Simulator()
    with pytest.raises(ValueError):
        PeriodicTimer(sim, 0.0, lambda e: None)


def test_timer_jitter_bounds():
    sim = Simulator(seed=3)
    times = []
    timer = PeriodicTimer(
        sim, 100.0, lambda e: times.append(e),
        jitter_rng=sim.rng("jit"), jitter_fraction=0.2,
    )
    timer.start()
    sim.run(until=2000.0)
    assert times, "timer should have fired"
    assert all(80.0 <= e <= 120.0 for e in times)


def test_timer_jitter_fraction_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        PeriodicTimer(sim, 10.0, lambda e: None, jitter_fraction=1.0)


# ----------------------------------------------------------------------
# Process
# ----------------------------------------------------------------------
def test_process_sleeps_advance_time():
    sim = Simulator()
    marks = []

    def gen():
        marks.append(sim.now)
        yield 10.0
        marks.append(sim.now)
        yield Sleep(5.0)
        marks.append(sim.now)

    Process(sim, gen())
    sim.run()
    assert marks == [0.0, 10.0, 15.0]


def test_process_result_captured():
    sim = Simulator()

    def gen():
        yield 1.0
        return 42

    proc = Process(sim, gen())
    sim.run()
    assert proc.finished
    assert proc.result == 42


def test_process_waits_on_condition():
    sim = Simulator()
    cond = waituntil()
    got = []

    def gen():
        value = yield cond
        got.append((sim.now, value))

    Process(sim, gen())
    sim.schedule(25.0, cond.fire, "payload")
    sim.run()
    assert got == [(25.0, "payload")]


def test_condition_fire_idempotent():
    sim = Simulator()
    cond = waituntil()

    def gen():
        value = yield cond
        return value

    proc = Process(sim, gen())
    cond.fire("first")
    cond.fire("second")
    sim.run()
    assert proc.result == "first"


def test_prefired_condition_resumes_immediately():
    sim = Simulator()
    cond = waituntil()
    cond.fire("ready")

    def gen():
        value = yield cond
        return value

    proc = Process(sim, gen())
    sim.run()
    assert proc.result == "ready"


def test_process_stop_terminates():
    sim = Simulator()
    marks = []

    def gen():
        yield 10.0
        marks.append("should not happen")

    proc = Process(sim, gen())
    sim.run(until=5.0)
    proc.stop()
    sim.run()
    assert marks == []
    assert proc.finished


def test_process_bad_yield_raises():
    sim = Simulator()

    def gen():
        yield "nonsense"

    Process(sim, gen())
    with pytest.raises(TypeError):
        sim.run()


def test_sleep_negative_rejected():
    with pytest.raises(ValueError):
        Sleep(-1.0)
