"""Malformed fault plans die as usage errors, not tracebacks.

``REPRO_CAMPAIGN_FAULTS`` is typed by humans running chaos drills; a
typo used to surface as a raw ``KeyError`` (or worse) from deep inside
the executor.  Every malformed shape must now raise a
:class:`FaultPlanError` that names the problem — and both CLIs must
turn that into exit code 2 on stderr.
"""

import pytest

from repro.campaign.cli import main as campaign_main
from repro.campaign.faults import FAULTS_ENV, Fault, FaultPlan, FaultPlanError
from repro.scenario.cli import main as scenario_main


@pytest.mark.parametrize(
    "text, match",
    [
        ("not json at all", "not valid JSON"),
        ('{"digest_prefix": "ab"}', "must be a JSON array"),
        ('["not-an-object"]', "fault #0 must be an object"),
        ('[{"action": "kill"}]', "missing required key 'digest_prefix'"),
        ('[{"digest_prefix": "ab"}]', "missing required key 'action'"),
        (
            '[{"digest_prefix": "ab", "action": "explode"}]',
            "unknown fault action",
        ),
        (
            '[{"digest_prefix": "ab", "action": "kill", "attempt": -1}]',
            "attempt must be >= 0",
        ),
        (
            '[{"digest_prefix": "ab", "action": "kill", "attempt": "soon"}]',
            "invalid literal",
        ),
        (
            '[{"digest_prefix": "XYZ!", "action": "kill"}]',
            "not a lowercase-hex digest prefix",
        ),
    ],
)
def test_malformed_plans_raise_fault_plan_error(text, match):
    with pytest.raises(FaultPlanError, match=match):
        FaultPlan.from_json(text)


def test_fault_plan_error_is_a_value_error():
    # Existing callers that catch ValueError keep working.
    assert issubclass(FaultPlanError, ValueError)


def test_valid_plans_still_round_trip():
    plan = FaultPlan(
        faults=(
            Fault(digest_prefix="", attempt=0, action="kill"),  # matches all
            Fault(digest_prefix="0badc0ffee", attempt=2, action="hang"),
        )
    )
    assert FaultPlan.from_json(plan.to_json()) == plan


def test_from_env_names_the_variable(monkeypatch):
    monkeypatch.setenv(FAULTS_ENV, '[{"action": "kill"}]')
    with pytest.raises(FaultPlanError, match=FAULTS_ENV):
        FaultPlan.from_env()
    monkeypatch.delenv(FAULTS_ENV)
    assert FaultPlan.from_env() is None


def test_campaign_cli_exits_2_on_malformed_plan(monkeypatch, capsys):
    monkeypatch.setenv(FAULTS_ENV, "{broken")
    assert campaign_main(["fig2", "--jobs", "1", "--no-cache"]) == 2
    err = capsys.readouterr().err
    assert FAULTS_ENV in err
    assert "Traceback" not in err


def test_scenario_sweep_cli_exits_2_on_malformed_plan(monkeypatch, capsys):
    monkeypatch.setenv(FAULTS_ENV, '[{"digest_prefix": "zz??"}]')
    assert (
        scenario_main(
            ["sweep", "bursty", "--jobs", "1", "--no-cache", "--quiet"]
        )
        == 2
    )
    err = capsys.readouterr().err
    assert FAULTS_ENV in err
    assert "Traceback" not in err
