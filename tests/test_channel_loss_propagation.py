"""Tests for loss models and indoor propagation."""

import random

import pytest

from repro.channel import (
    BernoulliLoss,
    GilbertElliottLoss,
    LogDistancePathLoss,
    NoLoss,
    PerLinkLoss,
    Position,
    RadioEnvironment,
    SnrLoss,
    distance,
)
from repro.mac.frames import Frame, FrameType


def frame(src="a", dst="b", size=1500, rate=11.0):
    return Frame(FrameType.DATA, src, dst, size, rate)


# ----------------------------------------------------------------------
# loss models
# ----------------------------------------------------------------------
def test_no_loss_never_loses():
    model = NoLoss()
    assert all(not model.is_lost(frame()) for _ in range(100))


def test_bernoulli_extremes():
    assert not BernoulliLoss(0.0).is_lost(frame())
    assert BernoulliLoss(1.0).is_lost(frame())


def test_bernoulli_rate_statistical():
    model = BernoulliLoss(0.3, rng=random.Random(1))
    losses = sum(model.is_lost(frame()) for _ in range(5000))
    assert 0.25 < losses / 5000 < 0.35


def test_bernoulli_validation():
    with pytest.raises(ValueError):
        BernoulliLoss(1.5)


def test_per_link_loss_uses_link_and_default():
    model = PerLinkLoss({("a", "b"): 1.0}, default=0.0)
    assert model.is_lost(frame("a", "b"))
    assert not model.is_lost(frame("b", "a"))
    model.set_link("b", "a", 1.0)
    assert model.is_lost(frame("b", "a"))


def test_per_link_validation():
    model = PerLinkLoss()
    with pytest.raises(ValueError):
        model.set_link("a", "b", -0.1)


def test_gilbert_elliott_bursts():
    model = GilbertElliottLoss(
        p_good_to_bad=0.05,
        p_bad_to_good=0.2,
        loss_good=0.0,
        loss_bad=1.0,
        rng=random.Random(2),
    )
    outcomes = [model.is_lost(frame()) for _ in range(4000)]
    loss_rate = sum(outcomes) / len(outcomes)
    # Stationary bad-state probability = 0.05 / (0.05 + 0.2) = 0.2.
    assert 0.1 < loss_rate < 0.3
    # Losses must be bursty: P(loss | previous loss) >> overall rate.
    joint = sum(
        1 for i in range(1, len(outcomes)) if outcomes[i] and outcomes[i - 1]
    )
    cond = joint / max(1, sum(outcomes[:-1]))
    assert cond > 1.5 * loss_rate


def test_gilbert_elliott_validation():
    with pytest.raises(ValueError):
        GilbertElliottLoss(p_good_to_bad=1.5)


def test_gilbert_elliott_per_link_state():
    model = GilbertElliottLoss(
        p_good_to_bad=1.0, p_bad_to_good=0.0, loss_good=0.0, loss_bad=1.0,
        rng=random.Random(3),
    )
    model.is_lost(frame("a", "b"))  # drives a->b into BAD
    # A different link starts fresh in GOOD (first frame samples the
    # transition, so only the *second* call would be lossy).
    assert ("c", "d") not in model._state_bad or not model._state_bad[("c", "d")]


# ----------------------------------------------------------------------
# propagation
# ----------------------------------------------------------------------
def test_distance():
    assert distance(Position(0, 0), Position(3, 4)) == pytest.approx(5.0)


def test_log_distance_path_loss_increases():
    model = LogDistancePathLoss()
    losses = [model.path_loss_db(d) for d in (1.0, 2.0, 5.0, 20.0)]
    assert losses == sorted(losses)


def test_log_distance_exact():
    model = LogDistancePathLoss(reference_loss_db=40.0, exponent=3.0)
    assert model.path_loss_db(10.0) == pytest.approx(40.0 + 30.0)


def test_wall_attenuation_added():
    model = LogDistancePathLoss(wall_loss_db=5.0)
    assert model.path_loss_db(5.0, walls=2) - model.path_loss_db(5.0) == pytest.approx(10.0)


def test_below_reference_distance_clamped():
    model = LogDistancePathLoss()
    assert model.path_loss_db(0.01) == model.path_loss_db(1.0)


def test_validation():
    with pytest.raises(ValueError):
        LogDistancePathLoss(exponent=0.0)
    with pytest.raises(ValueError):
        LogDistancePathLoss(reference_distance_m=0.0)


def test_environment_snr():
    env = RadioEnvironment(tx_power_dbm=15.0, noise_floor_dbm=-92.0)
    env.place("ap", 0.0, 0.0)
    env.place("sta", 10.0, 0.0)
    loss = env.path_loss.path_loss_db(10.0)
    assert env.snr_db("ap", "sta") == pytest.approx(15.0 - loss + 92.0)


def test_environment_walls_and_shadowing_symmetric():
    env = RadioEnvironment()
    env.place("a", 0.0, 0.0)
    env.place("b", 5.0, 0.0)
    base = env.snr_db("a", "b")
    env.set_walls("a", "b", 2)
    walled = env.snr_db("a", "b")
    assert walled < base
    assert env.snr_db("b", "a") == pytest.approx(walled)
    env.set_shadowing("a", "b", 10.0)
    assert env.snr_db("a", "b") == pytest.approx(walled - 10.0)


def test_environment_override():
    env = RadioEnvironment()
    env.override_snr("x", "y", 7.5)
    assert env.snr_db("x", "y") == 7.5


def test_environment_missing_node_raises():
    env = RadioEnvironment()
    env.place("a", 0.0, 0.0)
    with pytest.raises(KeyError):
        env.snr_db("a", "ghost")


def test_snr_loss_model_tracks_environment():
    env = RadioEnvironment()
    env.override_snr("a", "b", 30.0)   # clean
    env.override_snr("a", "c", -10.0)  # dead
    model = SnrLoss(env, rng=random.Random(4))
    assert model.loss_probability(frame("a", "b")) < 0.01
    assert model.loss_probability(frame("a", "c")) > 0.99
