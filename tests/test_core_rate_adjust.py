"""Tests for the ADJUSTRATEEVENT policy."""

import pytest
from hypothesis import given, strategies as st

from repro.core import RateAdjustConfig, RateAdjuster, TokenBucket


def make_buckets(rates, spends, now=1_000_000.0):
    buckets = []
    for i, (rate, spend) in enumerate(zip(rates, spends)):
        b = TokenBucket(f"n{i}", rate=rate, depth_us=1e6)
        b.charge(spend * now)  # spend expressed as a fraction of now
        buckets.append(b)
    return buckets, now


def test_idle_station_donates_to_busy_one():
    buckets, now = make_buckets([0.5, 0.5], [0.49, 0.05])
    adjuster = RateAdjuster()
    rates = adjuster.adjust(buckets, now)
    assert rates["n1"] < 0.5  # idle donor
    assert rates["n0"] > 0.5  # busy recipient
    assert sum(rates.values()) == pytest.approx(1.0)


def test_no_transfer_when_everyone_busy():
    buckets, now = make_buckets([0.5, 0.5], [0.48, 0.47])
    adjuster = RateAdjuster()
    rates = adjuster.adjust(buckets, now)
    assert rates == {"n0": 0.5, "n1": 0.5}
    assert adjuster.adjustments == 0


def test_no_transfer_when_everyone_idle():
    buckets, now = make_buckets([0.5, 0.5], [0.01, 0.02])
    rates = RateAdjuster().adjust(buckets, now)
    assert rates == {"n0": 0.5, "n1": 0.5}


def test_transfer_is_half_the_minimum_excess():
    buckets, now = make_buckets([0.5, 0.5], [0.5, 0.1])
    cfg = RateAdjustConfig(max_transfer=1.0)
    adjuster = RateAdjuster(cfg)
    rates = adjuster.adjust(buckets, now)
    # n1's excess = 0.4 -> transfer 0.2.
    assert adjuster.last_transfer == pytest.approx(0.2, abs=0.01)
    assert rates["n1"] == pytest.approx(0.3, abs=0.01)


def test_max_transfer_caps_movement():
    buckets, now = make_buckets([0.5, 0.5], [0.5, 0.0])
    adjuster = RateAdjuster(RateAdjustConfig(max_transfer=0.05))
    adjuster.adjust(buckets, now)
    assert adjuster.last_transfer <= 0.05 + 1e-9


def test_min_rate_floor_respected():
    buckets, now = make_buckets([0.1, 0.9], [0.0, 0.89])
    adjuster = RateAdjuster(RateAdjustConfig(min_rate=0.08))
    rates = adjuster.adjust(buckets, now)
    assert rates["n0"] >= 0.08 - 1e-9


def test_is_active_predicate_overrides_ratio():
    # n1 spends little of its assignment but the scheduler vouches for
    # it (crowded, not idle): no transfer may happen.
    buckets, now = make_buckets([0.5, 0.5], [0.5, 0.2])
    adjuster = RateAdjuster()
    rates = adjuster.adjust(buckets, now, is_active=lambda b: True)
    assert rates == {"n0": 0.5, "n1": 0.5}


def test_is_active_predicate_can_mark_donor():
    buckets, now = make_buckets([0.5, 0.5], [0.5, 0.2])
    adjuster = RateAdjuster()
    rates = adjuster.adjust(
        buckets, now, is_active=lambda b: b.station != "n1"
    )
    assert rates["n1"] < 0.5


def test_windows_reset_after_adjust():
    buckets, now = make_buckets([0.5, 0.5], [0.4, 0.1])
    RateAdjuster().adjust(buckets, now)
    assert all(b.spent_since_adjust_us == 0.0 for b in buckets)
    assert all(b.window_start_us == now for b in buckets)


def test_three_station_redistribution_shares_equally():
    buckets, now = make_buckets([1 / 3] * 3, [0.33, 0.32, 0.01])
    adjuster = RateAdjuster(RateAdjustConfig(max_transfer=1.0))
    rates = adjuster.adjust(buckets, now)
    gain0 = rates["n0"] - 1 / 3
    gain1 = rates["n1"] - 1 / 3
    assert gain0 == pytest.approx(gain1)
    assert gain0 > 0


def test_normalize_rescales_to_total():
    buckets, _ = make_buckets([0.2, 0.2], [0, 0])
    RateAdjuster.normalize(buckets, total=1.0)
    assert sum(b.rate for b in buckets) == pytest.approx(1.0)


def test_normalize_handles_zero_rates():
    buckets, _ = make_buckets([0.0, 0.0], [0, 0])
    RateAdjuster.normalize(buckets, total=1.0)
    assert [b.rate for b in buckets] == [0.5, 0.5]


def test_config_validation():
    with pytest.raises(ValueError):
        RateAdjustConfig(threshold=0.0)
    with pytest.raises(ValueError):
        RateAdjustConfig(activity_floor=0.0)
    with pytest.raises(ValueError):
        RateAdjustConfig(min_rate=1.0)
    with pytest.raises(ValueError):
        RateAdjustConfig(max_transfer=0.0)
    with pytest.raises(ValueError):
        RateAdjustConfig(restore_fraction=2.0)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.05, max_value=1.0),  # rate weight
            st.floats(min_value=0.0, max_value=1.0),   # utilization of rate
        ),
        min_size=2,
        max_size=6,
    )
)
def test_adjust_conserves_total_rate(spec):
    total = sum(w for w, _ in spec)
    now = 1_000_000.0
    buckets = []
    for i, (weight, utilization) in enumerate(spec):
        rate = weight / total
        b = TokenBucket(f"n{i}", rate=rate, depth_us=1e9)
        b.charge(rate * utilization * now)
        buckets.append(b)
    before = sum(b.rate for b in buckets)
    RateAdjuster(RateAdjustConfig(max_transfer=1.0)).adjust(buckets, now)
    after = sum(b.rate for b in buckets)
    assert after == pytest.approx(before, rel=1e-9)
    assert all(b.rate >= 0 for b in buckets)
