"""Tests for the command-line runner."""

import pytest

from repro.cli import main


def test_list_prints_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig1", "fig9", "table4"):
        assert name in out


def test_unknown_experiment_errors(capsys):
    assert main(["nonsense"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_single_experiment_runs(capsys):
    assert main(["fig2", "--seconds", "2", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "Figure 2" in out
    assert "channel-time ratio" in out


def test_table2_runs_with_seconds(capsys):
    assert main(["table2", "--seconds", "2"]) == 0
    assert "Table 2" in capsys.readouterr().out


def test_fig5_duration_mapping(capsys):
    # fig5.run takes duration_s, exercised via the --seconds flag.
    assert main(["fig5", "--seconds", "7200"]) == 0
    assert "Figure 5" in capsys.readouterr().out


def test_list_mentions_perf(capsys):
    assert main(["list"]) == 0
    assert "perf" in capsys.readouterr().out


def test_perf_subcommand_dispatches(tmp_path, capsys):
    target = tmp_path / "bench.json"
    rc = main(
        ["perf", "--stations", "4", "--schedulers", "fifo",
         "--profiles", "same", "--seconds", "0.05", "--json", str(target)]
    )
    assert rc == 0
    assert "events/sec" in capsys.readouterr().out
    assert target.exists()
