"""Tier-1 smoke tests for the perf benchmark subsystem.

Runs the N=16 saturated scenario briefly with an events-executed budget
assertion (the kernel must neither stall nor explode), and checks the
``BENCH_perf.json`` machinery and the ``repro perf`` CLI end to end on
a tiny matrix.
"""

import json

import pytest

from repro.perf import (
    PerfScenario,
    build_cell,
    build_report,
    load_report,
    matrix,
    render_table,
    run_scenario,
    sample_row,
    write_report,
)
from repro.perf.cli import main as perf_cli_main

#: N=16 smoke scenario: short but long enough to saturate the cell.
SMOKE = PerfScenario(stations=16, scheduler="tbr", profile="multi", seconds=0.2)

#: Events the smoke scenario may execute.  The exact count is
#: deterministic (asserted below); the budget guards against the kernel
#: regressing into scheduling storms (e.g. a timer rescheduling itself
#: at zero delay) without pinning the number itself.
SMOKE_EVENT_BUDGET = 20_000


def test_n16_smoke_within_event_budget():
    sample = run_scenario(SMOKE)
    assert 0 < sample.events <= SMOKE_EVENT_BUDGET
    assert sample.sim_s == pytest.approx(0.2)
    assert sample.total_mbps > 0  # the saturated cell carried traffic
    assert sample.events_per_sec > 0


def test_smoke_event_count_is_deterministic():
    first = run_scenario(SMOKE)
    second = run_scenario(SMOKE)
    assert first.events == second.events
    assert first.total_mbps == second.total_mbps


def test_budget_enforceable_with_max_events():
    # The budget assertion above is advisory; this drives the same cell
    # through the kernel's hard cap to prove the cap composes with it.
    cell = build_cell(SMOKE)
    cell.sim.run(until=200_000.0, max_events=500)
    assert cell.sim.events_executed == 500


def test_scenario_validation():
    with pytest.raises(ValueError):
        PerfScenario(stations=0, scheduler="fifo")
    with pytest.raises(ValueError):
        PerfScenario(stations=4, scheduler="fifo", profile="nope")
    with pytest.raises(ValueError):
        PerfScenario(stations=4, scheduler="fifo", seconds=0.0)


def test_matrix_axes_and_seconds_schedule():
    scenarios = matrix((4, 64), ("fifo", "tbr"), ("multi",))
    keys = [scenario.key for scenario in scenarios]
    assert keys == ["fifo/multi/n4", "fifo/multi/n64", "tbr/multi/n4", "tbr/multi/n64"]
    by_n = {scenario.stations: scenario.seconds for scenario in scenarios}
    assert by_n[4] == 2.0 and by_n[64] == 0.5


def test_multi_profile_rates_cycle():
    scenario = PerfScenario(stations=6, scheduler="fifo", profile="multi")
    assert scenario.station_rates() == [1.0, 2.0, 5.5, 11.0, 1.0, 2.0]
    same = PerfScenario(stations=3, scheduler="fifo", profile="same")
    assert same.station_rates() == [11.0, 11.0, 11.0]


def test_bench_perf_json_round_trip(tmp_path):
    sample = run_scenario(
        PerfScenario(stations=4, scheduler="tbr", profile="multi", seconds=0.1)
    )
    target = tmp_path / "BENCH_perf.json"
    written = write_report([sample], target, note="unit test")
    assert written == target
    report = load_report(target)
    assert report["benchmark"] == "perf_scaling"
    assert report["note"] == "unit test"
    [row] = report["results"]
    assert row["key"] == "tbr/multi/n4"
    assert row["events"] == sample.events
    assert row["events_per_sec"] > 0
    # Raw JSON on disk parses to the same document.
    assert json.loads(target.read_text()) == report


def test_report_headline_present_when_scenario_included():
    sample = run_scenario(
        PerfScenario(stations=64, scheduler="tbr", profile="multi", seconds=0.05)
    )
    report = build_report([sample])
    assert report["headline"] is not None
    assert report["headline"]["key"] == "tbr/multi/n64"
    other = build_report(
        [run_scenario(PerfScenario(stations=4, scheduler="fifo", seconds=0.05))]
    )
    assert other["headline"] is None


def test_render_table_lists_each_scenario():
    sample = run_scenario(
        PerfScenario(stations=4, scheduler="drr", profile="same", seconds=0.05)
    )
    table = render_table([sample])
    assert "drr/same" in table
    assert "events/sec" in table
    assert sample_row(sample)["scheduler"] == "drr"


def test_perf_cli_writes_json(tmp_path, capsys):
    target = tmp_path / "bench.json"
    rc = perf_cli_main(
        [
            "--stations", "4",
            "--schedulers", "fifo",
            "--profiles", "same",
            "--seconds", "0.05",
            "--json", str(target),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "fifo/same" in out
    assert target.exists()
    report = json.loads(target.read_text())
    assert [row["key"] for row in report["results"]] == ["fifo/same/n4"]


def test_perf_cli_no_json(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    rc = perf_cli_main(
        ["--stations", "4", "--schedulers", "fifo", "--profiles", "same",
         "--seconds", "0.05", "--no-json"]
    )
    assert rc == 0
    assert not (tmp_path / "BENCH_perf.json").exists()
    assert "Simulator scaling" in capsys.readouterr().out


def test_perf_cli_output_flag(tmp_path, capsys):
    target = tmp_path / "custom.json"
    rc = perf_cli_main(
        ["--stations", "4", "--schedulers", "fifo", "--profiles", "same",
         "--seconds", "0.05", "--output", str(target)]
    )
    assert rc == 0
    assert target.exists()
    report = json.loads(target.read_text())
    assert [row["key"] for row in report["results"]] == ["fifo/same/n4"]
    assert report["campaign"] is None  # no --campaign requested


def test_perf_cli_no_write_flag(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    rc = perf_cli_main(
        ["--stations", "4", "--schedulers", "fifo", "--profiles", "same",
         "--seconds", "0.05", "--no-write"]
    )
    assert rc == 0
    assert not (tmp_path / "BENCH_perf.json").exists()


def test_perf_cli_rejects_missing_output_parent(tmp_path):
    with pytest.raises(SystemExit):
        perf_cli_main(
            ["--stations", "4", "--schedulers", "fifo", "--profiles", "same",
             "--seconds", "0.05",
             "--output", str(tmp_path / "missing" / "b.json")]
        )


def test_perf_cli_rejects_output_and_json_together(tmp_path):
    with pytest.raises(SystemExit):
        perf_cli_main(
            ["--output", str(tmp_path / "a.json"),
             "--json", str(tmp_path / "b.json")]
        )


def test_report_round_trips_campaign_section(tmp_path):
    sample = run_scenario(
        PerfScenario(stations=4, scheduler="fifo", profile="same", seconds=0.05)
    )
    campaign = {"jobs": 7, "serial_wall_s": 1.0, "parallel_wall_s": 0.5}
    target = write_report([sample], tmp_path / "b.json", campaign=campaign)
    assert load_report(target)["campaign"] == campaign


def test_sample_records_event_categories():
    sample = run_scenario(
        PerfScenario(stations=4, scheduler="tbr", profile="multi", seconds=0.1)
    )
    cats = sample.events_by_category
    assert set(cats) == {"traffic", "mac", "phy", "timer", "other"}
    assert sum(cats.values()) == sample.events
    # Saturated downlink: traffic events exist and cost one per packet.
    assert cats["traffic"] > 0
    row = sample_row(sample)
    assert row["events_by_category"] == cats


def test_report_round_trips_event_categories(tmp_path):
    sample = run_scenario(
        PerfScenario(stations=4, scheduler="fifo", profile="same", seconds=0.05)
    )
    target = write_report([sample], tmp_path / "b.json")
    [row] = load_report(target)["results"]
    assert row["events_by_category"] == sample.events_by_category


def test_perf_cli_events_flag(tmp_path, capsys):
    rc = perf_cli_main(
        ["--stations", "4", "--schedulers", "fifo", "--profiles", "same",
         "--seconds", "0.05", "--events", "--no-write"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "Kernel events by category" in out
    assert "traffic" in out and "phy" in out


def test_campaign_bench_single_worker_skips_parallel_leg():
    """With one usable worker the parallel leg is skipped, annotated,
    and the JSON row says why (the old behavior produced a misleading
    sub-1 'speedup' on single-core hosts)."""
    from repro.perf.campaign_bench import (
        campaign_row,
        render_campaign,
        run_campaign_bench,
    )

    sample = run_campaign_bench(
        ["fig2"], workers=1, seconds={"fig2": 0.2}
    )
    assert sample.parallel_wall_s is None
    assert sample.parallel_speedup is None
    assert "skipped" in sample.degraded_reason
    assert sample.warm_executed == 0  # warm leg still runs, via cache
    assert 0 <= sample.warm_fraction < 1
    row = campaign_row(sample)
    assert json.dumps(row)
    assert row["parallel_wall_s"] is None
    assert row["parallel_speedup"] is None
    assert "skipped" in row["degraded_reason"]
    assert "skipped" in render_campaign(sample)


def test_campaign_bench_smoke(tmp_path):
    # Two cheap experiments, tiny durations: all three legs run, the
    # warm leg executes nothing, and the row is JSON-serializable.
    from repro.perf.campaign_bench import campaign_row, run_campaign_bench

    sample = run_campaign_bench(
        ["fig2", "table4"],
        workers=2,
        seconds={"fig2": 0.3, "table4": 0.3},
    )
    assert sample.jobs == 4
    assert sample.warm_executed == 0
    assert sample.serial_wall_s > 0 and sample.parallel_wall_s > 0
    assert sample.warm_wall_s < sample.parallel_wall_s
    row = campaign_row(sample)
    assert json.dumps(row)  # plain JSON types only
    assert row["workers"] == 2
    assert row["experiments"] == ["fig2", "table4"]
