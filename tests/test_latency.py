"""Per-packet latency metrics and the paper's latency claim.

The paper (Section 2.1): under time-based fairness the slow node's
performance measures "such as per-packet latency" match what it would
see in a single-rate cell of its own speed, regardless of the peers.
"""

import pytest

from repro.node import Cell
from repro.sim import Simulator
from repro.transport import FlowStats


# ----------------------------------------------------------------------
# FlowStats delay bookkeeping
# ----------------------------------------------------------------------
def test_delay_accumulation_and_mean():
    stats = FlowStats(Simulator(), "f")
    for d in (100.0, 200.0, 300.0):
        stats.on_delay(d)
    assert stats.mean_delay_us() == pytest.approx(200.0)


def test_delay_percentiles():
    stats = FlowStats(Simulator(), "f")
    for d in range(1, 101):
        stats.on_delay(float(d))
    assert stats.delay_percentile_us(0) == 1.0
    assert stats.delay_percentile_us(100) == 100.0
    assert stats.delay_percentile_us(50) == pytest.approx(50.5)


def test_delay_empty_and_validation():
    stats = FlowStats(Simulator(), "f")
    assert stats.mean_delay_us() == 0.0
    assert stats.delay_percentile_us(95) == 0.0
    with pytest.raises(ValueError):
        stats.on_delay(-1.0)
    with pytest.raises(ValueError):
        stats.delay_percentile_us(150.0)


def test_reset_clears_delays():
    stats = FlowStats(Simulator(), "f")
    stats.on_delay(5.0)
    stats.reset()
    assert stats.delays_us == []


# ----------------------------------------------------------------------
# end-to-end latency through the cell
# ----------------------------------------------------------------------
def test_udp_latency_recorded():
    cell = Cell(seed=1)
    station = cell.add_station("n1")
    flow = cell.udp_flow(station, direction="down", rate_mbps=1.0)
    cell.run(seconds=2.0)
    assert len(flow.stats.delays_us) > 50
    # One-way: wired 1 ms + queueing + one MAC exchange (~2.4 ms).
    assert 1_000.0 < flow.stats.mean_delay_us() < 50_000.0


def test_tcp_latency_recorded():
    cell = Cell(seed=1)
    station = cell.add_station("n1")
    flow = cell.tcp_flow(station, direction="down")
    cell.run(seconds=2.0)
    assert flow.stats.delays_us
    # Bulk TCP fills the AP queue: latency is dominated by queueing.
    assert flow.stats.delay_percentile_us(95) > flow.stats.mean_delay_us() / 3


def test_baseline_property_holds_for_latency():
    """Slow node's UDP latency in a TBR mixed cell matches its latency
    in an all-slow DCF cell (within a factor accounting for noise)."""

    def slow_latency(scheduler, peer_rate):
        cell = Cell(seed=4, scheduler=scheduler)
        slow = cell.add_station("slow", rate_mbps=1.0)
        peer = cell.add_station("peer", rate_mbps=peer_rate)
        flow = cell.udp_flow(slow, direction="down", rate_mbps=0.3)
        cell.udp_flow(peer, direction="down", rate_mbps=0.3 * peer_rate)
        cell.run(seconds=8.0, warmup_seconds=2.0)
        return flow.stats.mean_delay_us()

    mixed_tf = slow_latency("tbr", 11.0)
    same_rf = slow_latency("fifo", 1.0)
    assert mixed_tf == pytest.approx(same_rf, rel=0.6)
    # And under RF in the mixed cell the slow node fares no better
    # (both its own and the peer's packets clog the shared queue).
    mixed_rf = slow_latency("fifo", 11.0)
    assert mixed_rf > 0.0
