"""Unit tests for the campaign subsystem: job descriptors, the frozen
config encoding, the on-disk cache, and the executor's merging,
coalescing and cache semantics.

Plumbing tests use ``builtins:dict`` as the executor — a free "echo the
params" job — so only the tests that *need* a simulation pay for one.
"""

import pickle

import pytest

from repro.campaign import (
    CACHE_SCHEMA,
    Job,
    ResultCache,
    execute_job,
    freeze,
    job_params,
    make_job,
    run_jobs,
    serial_results,
    thaw,
)
from repro.campaign.registry import FIGURE_SUITE, campaign_registry
from repro.core.rate_adjust import RateAdjustConfig
from repro.core.tbr import TbrConfig
from repro.experiments import fig2
from repro.experiments.common import competing_job
from repro.phy.phy import DOT11B_LONG_PREAMBLE, PhyParams, frame_airtime_us

ECHO = "builtins:dict"


def echo_job(experiment, key, **params):
    return make_job(experiment, key, ECHO, params)


# ----------------------------------------------------------------------
# freeze / thaw
# ----------------------------------------------------------------------
def test_freeze_thaw_round_trips_nested_configs():
    original = {
        "rates": {"n1": 1.0, "n2": 11.0},
        "tbr": TbrConfig(weights={"n1": 3.0, "n2": 1.0}),
        "phy": DOT11B_LONG_PREAMBLE,
        "flags": [True, None, "x"],
    }
    frozen = freeze(original)
    hash(frozen)  # hashable all the way down
    thawed = thaw(frozen)
    assert thawed["rates"] == original["rates"]
    assert thawed["tbr"] == original["tbr"]  # dataclass eq incl. weights
    assert isinstance(thawed["tbr"].adjust, RateAdjustConfig)
    assert thawed["phy"] == DOT11B_LONG_PREAMBLE
    assert thawed["flags"] == (True, None, "x")  # sequences come back tuples


def test_freeze_is_insertion_order_independent():
    assert freeze({"a": 1, "b": 2}) == freeze({"b": 2, "a": 1})
    assert freeze({1.0: "x", 11.0: "y"}) == freeze({11.0: "y", 1.0: "x"})


def test_freeze_rejects_arbitrary_objects():
    with pytest.raises(TypeError):
        freeze(object())


# ----------------------------------------------------------------------
# job identity
# ----------------------------------------------------------------------
def test_digest_depends_on_config_not_placement():
    a = echo_job("fig8", ("down", 11.0), seed=1, seconds=2.0)
    b = echo_job("fig9", "elsewhere", seconds=2.0, seed=1)
    assert a.digest == b.digest  # same executor + params
    assert a.digest != echo_job("fig8", ("down", 11.0), seed=2, seconds=2.0).digest
    other_executor = make_job("fig8", ("down", 11.0), "builtins:len", {"seed": 1})
    assert other_executor.digest != echo_job("fig8", ("down", 11.0), seed=1).digest


def test_digest_salted_by_schema(monkeypatch):
    before = echo_job("x", "k", seed=1).digest
    monkeypatch.setattr("repro.campaign.job.CACHE_SCHEMA", CACHE_SCHEMA + "-next")
    after = echo_job("x", "k", seed=1).digest
    assert before != after  # bumping the salt invalidates every entry


def test_job_is_hashable_and_picklable():
    job = competing_job(
        "fig9", ("up", (1.0, 11.0), "tbr"), [1.0, 11.0],
        scheduler="tbr", tbr_config=TbrConfig(work_conserving=True),
        seconds=1.0, seed=3,
    )
    assert hash(job) == hash(job)
    clone = pickle.loads(pickle.dumps(job))
    assert clone == job
    assert clone.digest == job.digest
    params = job_params(clone)
    assert params["rates"] == {"n1": 1.0, "n2": 11.0}
    assert params["tbr_config"].work_conserving is True


def test_job_rejects_malformed_executor():
    with pytest.raises(ValueError):
        Job("x", "k", "no-colon", freeze({}))


def test_execute_job_echo():
    job = echo_job("x", "k", alpha=1, beta={"g": 2.5})
    assert execute_job(job) == {"alpha": 1, "beta": {"g": 2.5}}


# ----------------------------------------------------------------------
# cache
# ----------------------------------------------------------------------
def test_cache_round_trip_and_corruption(tmp_path):
    cache = ResultCache(tmp_path / "c")
    digest = "ab" + "0" * 62
    assert cache.get(digest) == (False, None)
    cache.put(digest, {"v": 1})
    assert cache.get(digest) == (True, {"v": 1})
    assert len(cache) == 1
    cache.path_for(digest).write_bytes(b"not a pickle")
    assert cache.get(digest) == (False, None)  # corrupt -> miss, dropped
    assert len(cache) == 0
    cache.put(digest, {"v": 2})
    assert cache.clear() == 1
    assert cache.get(digest) == (False, None)


# ----------------------------------------------------------------------
# executor semantics
# ----------------------------------------------------------------------
def test_run_jobs_merges_by_key_and_coalesces(tmp_path):
    jobs = [
        echo_job("expA", "k1", seed=1),
        echo_job("expA", "k2", seed=2),
        echo_job("expB", "other", seed=1),  # same config as expA:k1
    ]
    outcome = run_jobs(jobs, workers=1)
    assert outcome.stats.total == 3
    assert outcome.stats.unique == 2
    assert outcome.stats.coalesced == 1
    assert outcome.stats.executed == 2
    assert outcome.experiment_results("expA") == {
        "k1": {"seed": 1}, "k2": {"seed": 2}
    }
    assert outcome.experiment_results("expB") == {"other": {"seed": 1}}
    assert outcome.experiments() == ["expA", "expB"]


def test_run_jobs_cache_hits_and_force(tmp_path):
    cache = ResultCache(tmp_path)
    jobs = [echo_job("e", i, seed=i) for i in range(3)]
    cold = run_jobs(jobs, workers=1, cache=cache)
    assert (cold.stats.executed, cold.stats.cached) == (3, 0)
    warm = run_jobs(jobs, workers=1, cache=cache)
    assert (warm.stats.executed, warm.stats.cached) == (0, 3)
    assert warm.results == cold.results
    forced = run_jobs(jobs, workers=1, cache=cache, force=True)
    assert (forced.stats.executed, forced.stats.cached) == (3, 0)


def test_run_jobs_progress_events(tmp_path):
    cache = ResultCache(tmp_path)
    jobs = [echo_job("e", i, seed=i) for i in range(2)]
    events = []
    run_jobs(jobs, workers=1, cache=cache,
             progress=lambda ev, job, done, total: events.append((ev, done, total)))
    assert events == [("executed", 1, 2), ("executed", 2, 2)]
    events.clear()
    run_jobs(jobs, workers=1, cache=cache,
             progress=lambda ev, job, done, total: events.append((ev, done, total)))
    assert events == [("cached", 1, 2), ("cached", 2, 2)]


def test_run_jobs_rejects_conflicting_identities():
    with pytest.raises(ValueError):
        run_jobs(
            [echo_job("e", "k", seed=1), echo_job("e", "k", seed=2)],
            workers=1,
        )


def test_run_jobs_rejects_bad_worker_count():
    with pytest.raises(ValueError):
        run_jobs([echo_job("e", "k", seed=1)], workers=0)


def test_parallel_echo_matches_serial():
    jobs = [echo_job("e", i, seed=i, payload=[i] * 4) for i in range(6)]
    serial = run_jobs(jobs, workers=1)
    parallel = run_jobs(jobs, workers=2)
    assert parallel.results == serial.results
    assert parallel.stats.workers == 2


def test_serial_results_keys_and_order():
    jobs = [echo_job("e", k, seed=i) for i, k in enumerate(("b", "a", "c"))]
    results = serial_results(jobs)
    assert list(results) == ["b", "a", "c"]
    assert results["a"] == {"seed": 1}


# ----------------------------------------------------------------------
# registry: every experiment exposes coherent jobs()/reduce()
# ----------------------------------------------------------------------
def test_registry_covers_figures_tables_and_ablations():
    registry = campaign_registry()
    assert set(FIGURE_SUITE) <= set(registry)
    assert any(name.startswith("abl-") for name in registry)
    for name, spec in registry.items():
        jobs = spec.build_jobs(seed=1)
        assert jobs, name
        assert all(job.experiment == name for job in jobs), name
        keys = [job.key for job in jobs]
        assert len(keys) == len(set(keys)), name  # reduce() can tell them apart


def test_experiment_run_equals_campaign_reduce():
    jobs = fig2.jobs(seed=1, seconds=0.5)
    campaign = fig2.reduce(serial_results(jobs))
    direct = fig2.run(seed=1, seconds=0.5)
    assert fig2.render(campaign) == fig2.render(direct)


# ----------------------------------------------------------------------
# PhyParams multiprocessing safety
# ----------------------------------------------------------------------
def test_phyparams_pickles_cleanly_with_fresh_memos():
    phy = PhyParams(
        name="test", mode="dsss", slot_us=20.0, sifs_us=10.0, plcp_us=192.0,
        cw_min=31, cw_max=1023, basic_rates=(1.0, 2.0),
    )
    warm = frame_airtime_us(phy, 1500, 2.0)
    assert phy._psdu_cache  # memo warmed in this process
    clone = pickle.loads(pickle.dumps(phy))
    assert clone == phy
    # The clone starts with *empty, private* memo tables: nothing leaks
    # across the pickle boundary and nothing is shared.
    assert clone._psdu_cache == {}
    assert clone._psdu_cache is not phy._psdu_cache
    assert frame_airtime_us(clone, 1500, 2.0) == warm


def test_default_phy_survives_job_round_trip():
    job = competing_job("t", "k", [11.0], seconds=1.0)
    phy = job_params(pickle.loads(pickle.dumps(job)))["phy"]
    assert phy == DOT11B_LONG_PREAMBLE
    assert phy is not DOT11B_LONG_PREAMBLE
    assert phy._eifs_cache == {}
    assert phy.eifs_us() == DOT11B_LONG_PREAMBLE.eifs_us()
