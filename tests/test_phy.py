"""Tests for PHY rate tables, frame timing and error curves."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.phy import (
    DOT11B_LONG_PREAMBLE,
    DOT11B_SHORT_PREAMBLE,
    DOT11B_RATES,
    DOT11G_OFDM,
    DOT11G_RATES,
    ack_airtime_us,
    ack_rate_for,
    ber_for_rate,
    frame_airtime_us,
    frame_error_probability,
    highest_rate_for_snr,
    per_from_ber,
    rate_by_mbps,
)
from repro.phy.phy import ACK_BYTES, LLC_SNAP_BYTES, MAC_DATA_OVERHEAD_BYTES


# ----------------------------------------------------------------------
# rate tables
# ----------------------------------------------------------------------
def test_dot11b_rates_present():
    assert [r.mbps for r in DOT11B_RATES] == [1.0, 2.0, 5.5, 11.0]


def test_dot11g_rates_present():
    assert [r.mbps for r in DOT11G_RATES] == [6.0, 9.0, 12.0, 18.0, 24.0, 36.0, 48.0, 54.0]


def test_rate_lookup():
    assert rate_by_mbps(5.5).modulation == "CCK5.5"
    assert rate_by_mbps(54).family == "g"


def test_rate_lookup_unknown_raises():
    with pytest.raises(ValueError):
        rate_by_mbps(3.0)


def test_bits_us():
    assert rate_by_mbps(11.0).bits_us(11.0) == pytest.approx(1.0)


def test_min_snr_ordered_by_rate():
    snrs = [r.min_snr_db for r in DOT11B_RATES]
    assert snrs == sorted(snrs)


# ----------------------------------------------------------------------
# timing constants
# ----------------------------------------------------------------------
def test_difs_is_sifs_plus_two_slots():
    phy = DOT11B_LONG_PREAMBLE
    assert phy.difs_us == pytest.approx(10.0 + 2 * 20.0)
    assert DOT11G_OFDM.difs_us == pytest.approx(10.0 + 2 * 9.0)


def test_eifs_includes_ack_at_lowest_basic():
    phy = DOT11B_LONG_PREAMBLE
    expected = 10.0 + 50.0 + ack_airtime_us(phy, 1.0)
    assert phy.eifs_us() == pytest.approx(expected)


# ----------------------------------------------------------------------
# frame airtime
# ----------------------------------------------------------------------
def test_data_airtime_dsss_exact():
    phy = DOT11B_LONG_PREAMBLE
    psdu = 1500 + MAC_DATA_OVERHEAD_BYTES + LLC_SNAP_BYTES
    expected = 192.0 + 8.0 * psdu / 11.0
    assert frame_airtime_us(phy, 1500, 11.0) == pytest.approx(expected)


def test_data_airtime_short_preamble_saves_96us():
    long = frame_airtime_us(DOT11B_LONG_PREAMBLE, 1500, 11.0)
    short = frame_airtime_us(DOT11B_SHORT_PREAMBLE, 1500, 11.0)
    assert long - short == pytest.approx(96.0)


def test_data_airtime_without_llc():
    phy = DOT11B_LONG_PREAMBLE
    with_llc = frame_airtime_us(phy, 100, 1.0, include_llc=True)
    without = frame_airtime_us(phy, 100, 1.0, include_llc=False)
    assert with_llc - without == pytest.approx(8.0 * LLC_SNAP_BYTES / 1.0)


def test_ofdm_airtime_symbol_quantized():
    phy = DOT11G_OFDM
    airtime = frame_airtime_us(phy, 1500, 54.0)
    payload_part = airtime - phy.plcp_us
    # OFDM payload time is a whole number of 4 us symbols.
    assert payload_part % 4.0 == pytest.approx(0.0)
    bits = 22 + 8 * (1500 + MAC_DATA_OVERHEAD_BYTES + LLC_SNAP_BYTES)
    symbols = math.ceil(bits / (4.0 * 54.0))
    assert airtime == pytest.approx(20.0 + 4.0 * symbols)


def test_slower_rate_longer_airtime():
    phy = DOT11B_LONG_PREAMBLE
    times = [frame_airtime_us(phy, 1500, r.mbps) for r in DOT11B_RATES]
    assert times == sorted(times, reverse=True)


def test_ack_airtime():
    phy = DOT11B_LONG_PREAMBLE
    assert ack_airtime_us(phy, 2.0) == pytest.approx(192.0 + 8.0 * ACK_BYTES / 2.0)


def test_airtime_rejects_bad_inputs():
    phy = DOT11B_LONG_PREAMBLE
    with pytest.raises(ValueError):
        frame_airtime_us(phy, -1, 11.0)
    with pytest.raises(ValueError):
        frame_airtime_us(phy, 100, 0.0)


def test_ack_rate_selection_b():
    phy = DOT11B_LONG_PREAMBLE
    assert ack_rate_for(phy, 11.0) == 2.0
    assert ack_rate_for(phy, 5.5) == 2.0
    assert ack_rate_for(phy, 2.0) == 2.0
    assert ack_rate_for(phy, 1.0) == 1.0


def test_ack_rate_selection_g():
    assert ack_rate_for(DOT11G_OFDM, 54.0) == 24.0
    assert ack_rate_for(DOT11G_OFDM, 9.0) == 6.0


# ----------------------------------------------------------------------
# error model
# ----------------------------------------------------------------------
def test_ber_decreases_with_snr():
    for rate in (1.0, 2.0, 5.5, 11.0, 6.0, 54.0):
        bers = [ber_for_rate(rate, snr) for snr in (-5.0, 0.0, 5.0, 10.0, 20.0)]
        assert bers == sorted(bers, reverse=True)


def test_faster_b_rates_need_more_snr():
    # At a fixed mid-range SNR, BER must increase with rate.
    bers = [ber_for_rate(r.mbps, 4.0) for r in DOT11B_RATES]
    assert bers == sorted(bers)


def test_per_from_ber_bounds():
    assert per_from_ber(0.0, 1500) == 0.0
    assert per_from_ber(0.5, 1500) == 1.0
    assert 0.0 < per_from_ber(1e-5, 1500) < 1.0


def test_per_from_ber_validation():
    with pytest.raises(ValueError):
        per_from_ber(-0.1, 100)
    with pytest.raises(ValueError):
        per_from_ber(1.5, 100)
    with pytest.raises(ValueError):
        per_from_ber(0.1, -1)


@given(
    st.floats(min_value=1e-9, max_value=0.4),
    st.integers(min_value=1, max_value=3000),
)
def test_per_monotone_in_frame_size(ber, nbytes):
    assert per_from_ber(ber, nbytes) <= per_from_ber(ber, nbytes + 100) + 1e-12


@given(st.floats(min_value=-10.0, max_value=40.0))
def test_per_always_a_probability(snr):
    for rate in (1.0, 11.0, 54.0):
        per = frame_error_probability(rate, snr, 1500)
        assert 0.0 <= per <= 1.0


def test_highest_rate_for_snr_extremes():
    assert highest_rate_for_snr(40.0) == 11.0
    assert highest_rate_for_snr(-20.0) == 1.0


def test_highest_rate_for_snr_monotone():
    picks = [highest_rate_for_snr(snr) for snr in range(-5, 30)]
    assert picks == sorted(picks)


def test_highest_rate_custom_pool():
    assert highest_rate_for_snr(40.0, rates=[6.0, 54.0]) == 54.0
