"""Scenario family goldens: renders and event budgets are pinned.

Each of the four shipped workload families runs a short, fully
deterministic configuration; the rendered summary must match the
stored golden byte for byte, and the kernel-event budget — total and
per category, timeline events included under ``other`` — must match
exactly.  A silent change to RNG stream layout, event ordering, flow
naming or timeline semantics fails here first.
"""

import pathlib

import pytest

from repro.campaign.cache import ResultCache
from repro.campaign.executor import run_jobs, serial_results
from repro.scenario import (
    build_spec,
    render_result,
    run_spec,
    scenario_job,
    sweep_specs,
)

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: The pinned configuration per family (short horizons, rich timelines).
GOLDEN_PARAMS = {
    "churn": dict(
        seconds=2.0, warmup_s=0.5, period_s=0.5, stay_s=0.75, n_joiners=3
    ),
    "mobility": dict(seconds=2.0, warmup_s=0.5, dwell_s=0.4),
    "bursty": dict(seconds=2.0, warmup_s=0.5, on_s=0.5, off_s=0.5),
    "mixed": dict(seconds=1.5, warmup_s=0.5),
    "fairness-churn": dict(seconds=2.4, warmup_s=0.5),
    "fairness-outage": dict(seconds=3.0, warmup_s=0.5, outage_s=0.5),
    "campus": dict(seconds=2.5, warmup_s=0.5),
}

#: family -> (timeline fired, total events, per-category events).
PINNED_BUDGETS = {
    "churn": (
        6, 6297,
        {"traffic": 1162, "mac": 2524, "phy": 2354, "timer": 251, "other": 6},
    ),
    "mobility": (
        4, 6718,
        {"traffic": 1206, "mac": 2734, "phy": 2523, "timer": 251, "other": 4},
    ),
    "bursty": (
        3, 3815,
        {"traffic": 1162, "mac": 1215, "phy": 1184, "timer": 251, "other": 3},
    ),
    "mixed": (
        0, 4647,
        {"traffic": 1808, "mac": 1360, "phy": 1279, "timer": 200, "other": 0},
    ),
    "fairness-churn": (
        2, 8906,
        {"traffic": 1640, "mac": 3663, "phy": 3310, "timer": 291, "other": 2},
    ),
    # timeline fires once (the outage); the recovery and the four
    # jittered re-associations are builder machinery, booked under
    # ``other`` but not in ``timeline_fired``.
    "fairness-outage": (
        1, 8092,
        {"traffic": 1530, "mac": 3258, "phy": 2946, "timer": 352, "other": 6},
    ),
    # Two co-channel cells, one roamer: the timeline fires two roams
    # (out and back); each landing is builder machinery under ``other``
    # but not in ``timeline_fired``; the coupled medium charges one
    # extra PHY event per frame per co-channel neighbour, which is why
    # ``phy`` runs well above ``mac`` here and nowhere else.
    "campus": (
        2, 8390,
        {"traffic": 1033, "mac": 2433, "phy": 4318, "timer": 602, "other": 4},
    ),
}


@pytest.fixture(scope="module")
def family_results():
    return {
        family: run_spec(build_spec(family, **params))
        for family, params in GOLDEN_PARAMS.items()
    }


@pytest.mark.parametrize("family", sorted(GOLDEN_PARAMS))
def test_family_render_matches_golden(family, family_results):
    rendered = render_result(family_results[family]) + "\n"
    expected = (GOLDEN_DIR / f"scenario_{family}.txt").read_text()
    assert rendered == expected


@pytest.mark.parametrize("family", sorted(PINNED_BUDGETS))
def test_family_event_budget_is_pinned(family, family_results):
    result = family_results[family]
    fired, total, cats = PINNED_BUDGETS[family]
    measured = (
        result.timeline_fired,
        result.events_executed,
        result.events_by_category,
    )
    assert measured == (fired, total, cats), (
        "scenario event budget shifted — if intentional, update "
        f"PINNED_BUDGETS[{family!r}] to {measured!r} and regenerate the "
        "golden (see tests/test_scenario_golden.py)"
    )


def test_timeline_families_actually_fire_events():
    fired = {f: PINNED_BUDGETS[f][0] for f in PINNED_BUDGETS}
    assert fired["churn"] >= 4  # joins and leaves
    assert fired["mobility"] >= 3  # rate switches
    assert fired["bursty"] >= 2  # off/on cycles
    assert fired["fairness-churn"] == 2  # one leave, one rejoin
    assert fired["campus"] == 2  # roam out, roam back


@pytest.mark.parametrize("family", sorted(GOLDEN_PARAMS))
def test_family_run_leaks_no_pooled_packets(family, family_results):
    # Packet conservation across every golden family, including the
    # chaos-adjacent ones (leave flushes, outage flushes, aborted
    # in-flight frames): the pool remainder must be exactly zero.
    assert family_results[family].pool_leaked == 0


def test_fairness_outage_recovers_everyone(family_results):
    # After the blackout every station re-associated (present at end
    # with a final rate) and moved traffic on the far side: downlink
    # state, token grants and MAC attachments all survived the outage.
    result = family_results["fairness-outage"]
    assert sorted(result.final_rates_mbps) == [
        "peer1", "peer2", "peer3", "slow",
    ]
    for station, mbps in result.throughput_mbps.items():
        assert mbps > 0.0, station
    # Re-association rides the rejoin path: each flow restarts under a
    # fresh @r1 name after recovery.
    restarted = [
        name for name in result.flow_throughput_mbps if "@r1" in name
    ]
    assert len(restarted) == 4
    for name in restarted:
        assert result.flow_throughput_mbps[name] > 0.0, name


def test_campus_golden_roams_out_and_back(family_results):
    # Both timeline roams fired, the roamer ended back home, and its
    # airtime is attributed by both cells (merged occupancy = the sum).
    result = family_results["campus"]
    assert result.roams_fired == 2
    assert result.cell_members == {
        "c0": ["c0l1", "roam1"], "c1": ["c1l1"],
    }
    assert result.cell_channels == {"c0": 1, "c1": 1}  # coupled pair
    assert result.cell_occupancy["c0"]["roam1"] > 0.0
    assert result.cell_occupancy["c1"]["roam1"] > 0.0
    assert result.occupancy["roam1"] == pytest.approx(
        result.cell_occupancy["c0"]["roam1"]
        + result.cell_occupancy["c1"]["roam1"]
    )
    # Each landing restarted the roamer's flow under a fresh identity.
    assert sorted(
        name
        for name in result.flow_throughput_mbps
        if name.startswith("roam1")
    ) == ["roam1/tcp-up", "roam1/tcp-up@r1", "roam1/tcp-up@r2"]


def test_fairness_churn_tears_down_and_rejoins(family_results):
    # The golden run's leaver truly left and came back: it must be
    # associated again at the end with zero retained departed-state.
    result = family_results["fairness-churn"]
    assert result.throughput_mbps["leaver"] > 0.0
    assert "leaver" in result.final_rates_mbps  # present at end (rejoined)
    # The leaver's flows appear twice: original plus the @r1 restart.
    assert sorted(
        name for name in result.flow_throughput_mbps if "leaver" in name
    ) == ["leaver/tcp-up", "leaver/tcp-up@r1"]
    assert result.flow_throughput_mbps["leaver/tcp-up@r1"] > 0.0


# ----------------------------------------------------------------------
# campaign integration: specs are the job configs
# ----------------------------------------------------------------------
def test_sweep_runs_as_cached_campaign_jobs(tmp_path):
    specs = sweep_specs(
        "bursty", {"scheduler": ["fifo", "tbr"]},
        seconds=1.0, warmup_s=0.25,
    )
    jobs = [scenario_job(spec, key=spec.name) for spec in specs]
    cache = ResultCache(str(tmp_path / "cache"))

    cold = run_jobs(jobs, workers=1, cache=cache)
    assert cold.stats.executed == 2
    results = cold.experiment_results("scenario")
    assert sorted(results) == sorted(spec.name for spec in specs)

    warm = run_jobs(jobs, workers=1, cache=cache)
    assert warm.stats.executed == 0
    assert warm.stats.cached == 2
    warm_results = warm.experiment_results("scenario")
    for name, result in results.items():
        assert warm_results[name].throughput_mbps == result.throughput_mbps
        assert warm_results[name].events_executed == result.events_executed

    # The scheduler axis must actually change the outcome.
    fifo, tbr = (results[spec.name] for spec in specs)
    assert fifo.scheduler == "fifo" and tbr.scheduler == "tbr"
    assert fifo.throughput_mbps != tbr.throughput_mbps


def test_scenario_jobs_parallel_matches_serial():
    specs = sweep_specs(
        "mixed", {"scheduler": ["fifo", "tbr"]},
        seconds=0.5, warmup_s=0.1, n_tcp=1, n_udp=1,
    )
    jobs = [scenario_job(spec, key=spec.name) for spec in specs]
    serial = serial_results(jobs)
    parallel = run_jobs(jobs, workers=2, cache=None).experiment_results(
        "scenario"
    )
    for key, result in parallel.items():
        assert result.throughput_mbps == serial[key].throughput_mbps
        assert result.events_by_category == serial[key].events_by_category


def test_identical_specs_coalesce():
    spec = build_spec("bursty", seconds=0.5, warmup_s=0.1)
    jobs = [
        scenario_job(spec, key="first"),
        scenario_job(spec, key="second"),
    ]
    outcome = run_jobs(jobs, workers=1, cache=None)
    assert outcome.stats.executed == 1
    assert outcome.stats.coalesced == 1
