"""Filesystem spool backend: multi-process drain, leases, reclaim.

The spool lets any number of independent worker processes drain one
campaign through a shared directory.  These tests prove the contract
the pool backend already honours: identical results (byte-for-byte in
the store), identical retry/backoff/quarantine policy, and survival of
a worker killed mid-job via lease-expiry reclaim.
"""

import json
import os
import time

import pytest

from repro.campaign import queue as q
from repro.campaign.executor import run_jobs
from repro.campaign.faults import FaultPlan
from repro.campaign.job import make_job
from repro.campaign.policy import RetryPolicy
from repro.campaign.store import ResultStore

ECHO = "repro.campaign.faults:echo"


def echo_jobs(n, experiment="spool-test"):
    return [
        make_job(experiment, f"key-{i}", ECHO, {"value": i})
        for i in range(n)
    ]


def fast_retry(attempts=3):
    return RetryPolicy(
        max_attempts=attempts, backoff_base_s=0.01, jitter_frac=0.0
    )


# ----------------------------------------------------------------------
# protocol pieces
# ----------------------------------------------------------------------
def test_enqueue_claim_release_cycle(tmp_path):
    store_root = tmp_path / "store"
    root = tmp_path / "spool"
    cfg = q.SpoolConfig(store_root=str(store_root), retry=fast_retry())
    jobs = echo_jobs(2)
    assert q.enqueue(root, cfg, [(j.digest, j) for j in jobs]) == 2
    assert not q.spool_drained(root)
    status, digest, job, claim = q.claim_next(root)
    assert status == "claimed"
    assert digest == min(j.digest for j in jobs)  # digest order
    assert job.executor == ECHO
    # While one job is leased the other is still claimable, and a
    # second claim of the same digest cannot happen.
    status2, digest2, _, claim2 = q.claim_next(root)
    assert status2 == "claimed" and digest2 != digest
    assert q.claim_next(root)[0] == "wait"  # all leased, none ready
    q._release(claim)
    q._release(claim2)
    assert q.spool_drained(root)


def test_config_round_trips_policy(tmp_path):
    plan = FaultPlan.from_json(
        '[{"digest_prefix": "ab", "attempt": 2, "action": "raise"}]'
    )
    cfg = q.SpoolConfig(
        store_root=str(tmp_path / "store"),
        retry=fast_retry(attempts=5),
        timeout_s=12.5,
        fault_plan=plan,
        lease_s=3.0,
    )
    root = q.init_spool(tmp_path / "spool")
    q.save_config(root, cfg)
    loaded = q.load_config(root)
    assert loaded.retry.max_attempts == 5
    assert loaded.timeout_s == 12.5
    assert loaded.lease_s == 3.0
    assert loaded.fault_plan.faults == plan.faults
    assert loaded.store_root == cfg.store_root


def test_process_one_executes_and_stores(tmp_path):
    store = ResultStore(tmp_path / "store")
    root = tmp_path / "spool"
    cfg = q.SpoolConfig(store_root=str(store.root), retry=fast_retry())
    job = echo_jobs(1)[0]
    q.enqueue(root, cfg, [(job.digest, job)])
    assert q.process_one(root, cfg, store) == "done"
    assert q.process_one(root, cfg, store) == "empty"
    hit, value = store.get(job.digest)
    assert hit and value["echo"] == 0
    # The worker's put carried the job metadata into the index.
    assert store.index.entries[job.digest]["experiment"] == "spool-test"


def test_worker_loop_drains_spool(tmp_path):
    store = ResultStore(tmp_path / "store")
    root = tmp_path / "spool"
    cfg = q.SpoolConfig(store_root=str(store.root), retry=fast_retry())
    jobs = echo_jobs(4)
    q.enqueue(root, cfg, [(j.digest, j) for j in jobs])
    processed = q.worker_loop(
        root, idle_exit_s=0.1, as_worker=False
    )
    assert processed == 4
    assert q.spool_drained(root)
    assert all(store.contains(j.digest) for j in jobs)


# ----------------------------------------------------------------------
# lease expiry: an interrupted worker's jobs are reclaimed
# ----------------------------------------------------------------------
def test_reclaim_books_crash_attempt_and_requeues(tmp_path):
    store_root = tmp_path / "store"
    root = tmp_path / "spool"
    cfg = q.SpoolConfig(
        store_root=str(store_root), retry=fast_retry(), lease_s=0.1
    )
    job = echo_jobs(1)[0]
    q.enqueue(root, cfg, [(job.digest, job)])
    status, digest, _, claim = q.claim_next(root)
    assert status == "claimed"
    # Simulate the claimant dying mid-job: a heartbeat file that will
    # never be touched again, stamped with a pid that no longer runs.
    hb = claim.with_suffix(".hb")
    hb.write_text(json.dumps({"pid": 99999999, "attempt": 1}))
    stale = time.time() - 1.0
    os.utime(claim, (stale, stale))
    os.utime(hb, (stale, stale))
    assert q.reclaim_expired(root, cfg) == 1
    # The crash was booked as attempt 1 and the job is ready again.
    lines = q._attempt_lines(root, digest)
    assert len(lines) == 1
    assert lines[0]["kind"] == "crash"
    assert "presumed dead" in lines[0]["detail"]
    # Requeued with retry backoff: not ready instantly, ready soon.
    status2, digest2, _, claim2 = q.claim_next(root, now=time.time() + 5)
    assert status2 == "claimed" and digest2 == digest
    q._release(claim2)


def test_long_queued_job_is_not_reclaimed_at_claim_time(tmp_path):
    """os.rename preserves mtime, so a claim of a job that sat queued
    longer than lease_s would look instantly expired in the window
    before the heartbeat exists; claim_next must re-stamp it."""
    cfg = q.SpoolConfig(
        store_root=str(tmp_path / "store"),
        retry=fast_retry(),
        lease_s=0.2,
    )
    root = tmp_path / "spool"
    job = echo_jobs(1)[0]
    q.enqueue(root, cfg, [(job.digest, job)])
    envelope = q._dirs(q.init_spool(root))["jobs"] / f"{job.digest}.job"
    stale = time.time() - 10.0
    os.utime(envelope, (stale, stale))
    status, _, _, claim = q.claim_next(root)
    assert status == "claimed"
    # No heartbeat yet — the lease must still count as fresh.
    assert q.reclaim_expired(root, cfg) == 0
    assert claim.exists()
    q._release(claim)


def test_interrupted_reclaim_is_itself_reclaimed(tmp_path):
    """A reclaimer that dies between its rename and the booking leaves
    '<digest>.job.reclaim.<pid>' behind; the envelope must stay visible
    as pending work and be swept back into play, not lost forever."""
    cfg = q.SpoolConfig(
        store_root=str(tmp_path / "store"),
        retry=fast_retry(),
        lease_s=0.1,
    )
    root = tmp_path / "spool"
    job = echo_jobs(1)[0]
    q.enqueue(root, cfg, [(job.digest, job)])
    status, digest, _, claim = q.claim_next(root)
    assert status == "claimed"
    stranded = claim.with_name(f"{claim.name}.reclaim.99999999")
    os.rename(claim, stranded)
    stale = time.time() - 1.0
    os.utime(stranded, (stale, stale))
    assert not q.spool_drained(root)
    assert q.claim_next(root)[0] == "wait"
    assert q.reclaim_expired(root, cfg) == 1
    lines = q._attempt_lines(root, digest)
    assert len(lines) == 1 and lines[0]["kind"] == "crash"
    status2, digest2, _, claim2 = q.claim_next(root, now=time.time() + 5)
    assert status2 == "claimed" and digest2 == digest
    q._release(claim2)


def test_lease_timeout_spares_a_coordinating_process(tmp_path, monkeypatch):
    """With in_worker unset (participate=True embedders, repro serve),
    a job overrunning timeout_s books the timeout attempt and releases
    the claim but must NOT os._exit the whole process."""
    from repro.campaign import faults as faults_mod

    monkeypatch.setattr(faults_mod, "in_worker", False)
    cfg = q.SpoolConfig(
        store_root=str(tmp_path / "store"),
        retry=fast_retry(),
        timeout_s=0.05,
        lease_s=5.0,
    )
    root = q.init_spool(tmp_path / "spool")
    job = echo_jobs(1)[0]
    q.enqueue(root, cfg, [(job.digest, job)])
    status, digest, claimed_job, claim = q.claim_next(root)
    assert status == "claimed"
    lease = q._Lease(root, cfg, digest, claimed_job, 1, claim)
    lease.interval = 0.02
    lease.start()
    deadline = time.time() + 5.0
    while time.time() < deadline and not q._attempt_lines(root, digest):
        time.sleep(0.01)
    lease.release()
    # Reaching this line at all is the point: the process survived.
    lines = q._attempt_lines(root, digest)
    assert len(lines) == 1 and lines[0]["kind"] == "timeout"
    assert "released the claim" in lines[0]["detail"]
    assert not claim.exists()  # requeued for another participant


def test_live_lease_is_not_reclaimed(tmp_path):
    cfg = q.SpoolConfig(
        store_root=str(tmp_path / "store"),
        retry=fast_retry(),
        lease_s=30.0,
    )
    root = tmp_path / "spool"
    job = echo_jobs(1)[0]
    q.enqueue(root, cfg, [(job.digest, job)])
    status, _, _, claim = q.claim_next(root)
    assert status == "claimed"
    assert q.reclaim_expired(root, cfg) == 0  # fresh mtime = live
    q._release(claim)


def test_crash_reclaim_exhaustion_quarantines(tmp_path):
    """Every attempt dies without a heartbeat -> quarantine record,
    exactly like the pool's crash-retry exhaustion."""
    store_root = tmp_path / "store"
    root = tmp_path / "spool"
    cfg = q.SpoolConfig(
        store_root=str(store_root),
        retry=fast_retry(attempts=2),
        lease_s=0.05,
    )
    job = echo_jobs(1)[0]
    q.enqueue(root, cfg, [(job.digest, job)])
    for _ in range(2):
        # Future 'now' skips over the retry backoff of the requeue.
        status, digest, _, claim = q.claim_next(root, now=time.time() + 5)
        assert status == "claimed"
        stale = time.time() - 1.0
        os.utime(claim, (stale, stale))
        assert q.reclaim_expired(root, cfg) == 1
    failure = q.load_failure(root, job.digest)
    assert failure is not None
    assert len(failure.attempts) == 2
    assert all(a.kind == "crash" for a in failure.attempts)
    assert q.claim_next(root)[0] == "empty"  # not requeued


# ----------------------------------------------------------------------
# SpoolQueue through run_jobs: parity with the pool backend
# ----------------------------------------------------------------------
def test_two_workers_drain_byte_identical_to_serial(tmp_path):
    jobs = echo_jobs(6)
    serial_store = ResultStore(tmp_path / "serial")
    serial = run_jobs(jobs, workers=1, cache=serial_store)
    assert serial.stats.executed == 6

    spool_store = ResultStore(tmp_path / "spool-store")
    outcome = run_jobs(
        jobs,
        cache=spool_store,
        queue=q.SpoolQueue(tmp_path / "spool", spool_store, workers=2),
    )
    assert outcome.stats.executed == 6
    assert outcome.stats.failed == 0
    for job in jobs:
        assert outcome.results[job] == serial.results[job]
        # Byte-for-byte: same checksummed entry whichever path ran it.
        assert (
            spool_store.path_for(job.digest).read_bytes()
            == serial_store.path_for(job.digest).read_bytes()
        )
    assert q.spool_drained(tmp_path / "spool")


def test_spool_survives_injected_worker_kill(tmp_path):
    jobs = echo_jobs(4)
    plan = FaultPlan.from_json(json.dumps([
        {"digest_prefix": jobs[0].digest[:16], "attempt": 1,
         "action": "kill"},
    ]))
    store = ResultStore(tmp_path / "store")
    outcome = run_jobs(
        jobs,
        cache=store,
        retry=fast_retry(),
        fault_plan=plan,
        queue=q.SpoolQueue(
            tmp_path / "spool", store, workers=2, lease_s=0.5
        ),
    )
    assert outcome.stats.executed == 4
    assert outcome.stats.retried >= 1
    assert outcome.stats.failed == 0
    assert len(outcome.results) == 4


def test_spool_quarantines_permanent_failure(tmp_path):
    jobs = echo_jobs(3)
    plan = FaultPlan.from_json(json.dumps([
        {"digest_prefix": jobs[1].digest[:16], "attempt": 0,
         "action": "fail"},
    ]))
    store = ResultStore(tmp_path / "store")
    outcome = run_jobs(
        jobs,
        cache=store,
        retry=fast_retry(),
        fault_plan=plan,
        queue=q.SpoolQueue(tmp_path / "spool", store, workers=2),
    )
    assert outcome.stats.executed == 2
    assert outcome.stats.failed == 1
    (failure,) = outcome.failures
    assert failure.digest == jobs[1].digest
    assert failure.permanent
    assert failure.attempts[-1].kind == "exception"


def test_warm_spool_rerun_executes_nothing(tmp_path):
    jobs = echo_jobs(5)
    store = ResultStore(tmp_path / "store")
    first = run_jobs(
        jobs,
        cache=store,
        queue=q.SpoolQueue(tmp_path / "spool", store, workers=2),
    )
    assert first.stats.executed == 5
    second = run_jobs(
        jobs,
        cache=store,
        queue=q.SpoolQueue(tmp_path / "spool2", store, workers=2),
    )
    assert second.stats.executed == 0
    assert second.stats.cached == 5
    assert second.results == first.results


def test_external_worker_drains_coordinator_spool(tmp_path):
    """A coordinator with zero spawned workers + one external
    worker_loop process stand-in: the 'many independent repro campaign
    worker processes' topology, in-process for speed."""
    import threading

    jobs = echo_jobs(3)
    store = ResultStore(tmp_path / "store")
    spool = tmp_path / "spool"

    def external():
        # Polls until the coordinator's enqueue appears, then drains.
        q.worker_loop(spool, idle_exit_s=2.0, as_worker=False)

    helper = threading.Thread(target=external, daemon=True)
    helper.start()
    outcome = run_jobs(
        jobs,
        cache=store,
        queue=q.SpoolQueue(spool, store, workers=0, participate=True),
    )
    helper.join(timeout=10)
    assert outcome.stats.executed == 3
    assert len(outcome.results) == 3
