"""Tests for the PCF-style polling MAC and its TBR integration."""

import pytest

from repro.channel import Channel, ChannelUsageMonitor, PerLinkLoss
from repro.core import TbrConfig, TbrScheduler
from repro.mac.polling import (
    PolledStation,
    PollingCoordinator,
    RoundRobinPollPolicy,
    TokenPollPolicy,
)
from repro.phy import DOT11B_LONG_PREAMBLE
from repro.queueing import RoundRobinScheduler
from repro.sim import Simulator, us_from_s

from tests.conftest import SimplePacket

PHY = DOT11B_LONG_PREAMBLE


class PollingCell:
    """AP coordinator plus polled stations."""

    def __init__(self, rates, *, policy="rr", seed=1, tbr_config=None,
                 loss_model=None):
        self.sim = Simulator(seed=seed)
        self.channel = Channel(self.sim, loss_model)
        if policy == "rr":
            self.scheduler = RoundRobinScheduler()
            self.policy = RoundRobinPollPolicy()
        elif policy == "tbr":
            self.scheduler = TbrScheduler(self.sim, tbr_config)
            self.policy = TokenPollPolicy(self.scheduler)
        else:
            raise ValueError(policy)
        self.coordinator = PollingCoordinator(
            self.sim, self.channel, self.scheduler, PHY, self.policy
        )
        self.rx_bytes = {}
        self.coordinator.rx_handler = self._on_rx
        self.stations = []
        for i, rate in enumerate(rates):
            station = PolledStation(
                self.sim, self.channel, f"sta{i}", PHY, rate_mbps=rate,
                queue_capacity=10_000,
            )
            self.policy.register(station.address)
            self.scheduler.associate(station.address)
            self.stations.append(station)

    def _on_rx(self, frame):
        self.rx_bytes[frame.src] = (
            self.rx_bytes.get(frame.src, 0) + frame.size_bytes
        )

    def saturate_uplink(self, index, n=5000):
        for _ in range(n):
            self.stations[index].enqueue(SimplePacket("ap"))

    def run_seconds(self, seconds):
        self.sim.run(until=self.sim.now + us_from_s(seconds))

    def throughput(self, index, seconds):
        addr = self.stations[index].address
        return self.rx_bytes.get(addr, 0) * 8.0 / us_from_s(seconds)


def test_polled_station_answers_null_when_idle():
    cell = PollingCell([11.0])
    cell.run_seconds(0.05)
    assert cell.stations[0].polls_received > 5
    assert cell.stations[0].null_responses == cell.stations[0].polls_received


def test_uplink_data_flows_via_polls():
    cell = PollingCell([11.0])
    cell.saturate_uplink(0, n=50)
    cell.run_seconds(0.5)
    assert cell.rx_bytes.get("sta0", 0) == 50 * 1500


def test_no_collisions_under_polling():
    cell = PollingCell([11.0, 11.0, 11.0])
    for i in range(3):
        cell.saturate_uplink(i)
    corrupted = []
    cell.channel.add_sniffer(
        lambda f, d, c, s, e: corrupted.append(f) if c else None
    )
    cell.run_seconds(1.0)
    assert corrupted == []  # point coordination is collision-free


def test_round_robin_polling_equalizes_throughput():
    cell = PollingCell([1.0, 11.0], policy="rr", seed=2)
    cell.saturate_uplink(0)
    cell.saturate_uplink(1)
    cell.run_seconds(3.0)
    slow = cell.throughput(0, 3.0)
    fast = cell.throughput(1, 3.0)
    # Equal poll opportunities -> equal throughput: the anomaly again.
    assert slow == pytest.approx(fast, rel=0.1)


def test_token_polling_restores_time_fairness():
    """The paper's Section 4.1 claim: with a polling MAC, TBR regulates
    uplink (even UDP) with no client modification at all."""
    cell = PollingCell([1.0, 11.0], policy="tbr", seed=2)
    cell.saturate_uplink(0)
    cell.saturate_uplink(1)
    cell.run_seconds(3.0)
    slow = cell.throughput(0, 3.0)
    fast = cell.throughput(1, 3.0)
    assert fast > 4.0 * slow  # near the 11:1 rate ratio
    # Charged channel time approximately equal.
    b = cell.scheduler.buckets
    assert b["sta0"].spent_us == pytest.approx(b["sta1"].spent_us, rel=0.25)


def test_downlink_service_interleaved_with_polls():
    cell = PollingCell([11.0])
    delivered = []
    cell.stations[0].rx_handler = lambda f: delivered.append(f.size_bytes)
    for _ in range(20):
        pkt = SimplePacket("sta0")
        pkt.station = "sta0"
        cell.scheduler.enqueue(pkt)
    cell.saturate_uplink(0, n=20)
    cell.run_seconds(0.5)
    assert len(delivered) == 20
    assert cell.rx_bytes.get("sta0", 0) == 20 * 1500


def test_polling_survives_lossy_responses():
    loss = PerLinkLoss({("sta0", "ap"): 0.5})
    cell = PollingCell([11.0], seed=3, loss_model=loss)
    cell.saturate_uplink(0, n=200)
    cell.run_seconds(1.0)
    # Progress despite losses (no retry at the PCF level, but the
    # coordinator never deadlocks and keeps polling).
    assert cell.rx_bytes.get("sta0", 0) > 50 * 1500
    assert cell.coordinator.polls_sent > 100


def test_coordinator_idles_gracefully_without_stations():
    sim = Simulator(seed=1)
    channel = Channel(sim)
    coordinator = PollingCoordinator(
        sim, channel, RoundRobinScheduler(), PHY, RoundRobinPollPolicy()
    )
    sim.run(until=us_from_s(0.1))
    assert coordinator.idle_cycles > 0
    assert coordinator.polls_sent == 0


def test_token_policy_strict_idles_when_all_starved():
    sim = Simulator(seed=1)
    tbr = TbrScheduler(sim, TbrConfig(initial_tokens_us=0.0))
    policy = TokenPollPolicy(tbr, work_conserving=False)
    policy.register("a")
    tbr.buckets["a"].charge(1_000.0)
    assert policy.next_station() is None
    policy_wc = TokenPollPolicy(tbr, work_conserving=True)
    policy_wc.register("a")
    assert policy_wc.next_station() == "a"
