"""Roaming lifecycle: a handoff leaves nothing behind and grants once.

The roam compiles to disassociate(A) → association delay →
associate(B), and these properties are what make it a *handoff* rather
than a crash plus a join: the source cell retains no bucket, queue,
rate entry or channel subscription; the destination grants ``T_init``
exactly once; packet pools balance in every cell; and a roam that
lands mid-MAC-exchange completes or aborts cleanly.  The last tests
close the paper's loop: after the handoff the time-based regulator
re-converges to 1/n_active in *both* cells.
"""

import pytest

from repro.campus import CampusRuntime
from repro.core.tbr import TbrConfig
from repro.scenario import (
    CampusSpec,
    CellSpec,
    FlowSpec,
    RoamEvent,
    ScenarioSpec,
    StationSpec,
    build_spec,
    render_result,
    run_spec,
)

ROAM_S = 1.0
ASSOC_DELAY_S = 0.05


def _roam_spec(
    *,
    locals_per_cell: int = 1,
    roam_back_s: float = None,
    downlink: bool = False,
    seconds: float = 2.0,
    seed: int = 5,
    channels: tuple = (1, 1),
) -> ScenarioSpec:
    """Two TBR cells; ``walker`` starts in c0 and roams to c1 at 1.0 s
    (optionally back later).  All times are absolute sim time —
    warm-up is 0.4 s, so the roam lands inside the measured window."""
    cells = []
    for i in range(2):
        stations = [
            StationSpec(f"c{i}l{j + 1}", rate_mbps=11.0)
            for j in range(locals_per_cell)
        ]
        flows = [
            FlowSpec(station=s.name, kind="tcp", direction="up")
            for s in stations
        ]
        if i == 0:
            stations.append(StationSpec("walker", rate_mbps=1.0))
            flows.append(
                FlowSpec(
                    station="walker",
                    kind="udp",
                    direction="down" if downlink else "up",
                    rate_mbps=8.0 if downlink else 0.8,
                )
            )
        cells.append(
            CellSpec(
                name=f"c{i}",
                channel=channels[i],
                stations=tuple(stations),
                flows=tuple(flows),
            )
        )
    timeline = [
        RoamEvent(
            at_s=ROAM_S,
            station="walker",
            from_cell="c0",
            to_cell="c1",
            delay_s=ASSOC_DELAY_S,
        )
    ]
    if roam_back_s is not None:
        timeline.append(
            RoamEvent(
                at_s=roam_back_s,
                station="walker",
                from_cell="c1",
                to_cell="c0",
                delay_s=ASSOC_DELAY_S,
            )
        )
    return ScenarioSpec(
        name="roam",
        scheduler="tbr",
        stations=(),
        flows=(),
        timeline=tuple(timeline),
        seconds=seconds,
        warmup_seconds=0.4,
        seed=seed,
        campus=CampusSpec(
            cells=tuple(cells), adjacency=(("c0", "c1"),)
        ),
    )


# ----------------------------------------------------------------------
# nothing stranded in the source cell
# ----------------------------------------------------------------------
def test_roam_strands_nothing_in_the_source_cell():
    runtime = CampusRuntime(_roam_spec(), sanitize=True)
    runtime.run()
    source = runtime.campus.cells["c0"]
    # No station object, no association, no queue, no tokens, no rate.
    assert "walker" not in source.stations
    assert not source.scheduler.is_associated("walker")
    assert source.scheduler.backlog("walker") == 0
    assert source.scheduler.tokens_us("walker") == 0.0
    assert source.scheduler.token_rate("walker") == 0.0
    # No channel subscription of any kind left behind.
    assert all(
        lis.address != "walker" for lis in source.channel.listeners
    )
    # The source AP's pinned downlink rate entry is gone too.
    assert "walker" not in source.ap.rate_controller.table
    # ...and the destination holds exactly the live association.
    dest = runtime.campus.cells["c1"]
    assert "walker" in dest.stations
    assert dest.scheduler.is_associated("walker")
    assert runtime.campus.membership["walker"] == "c1"


def test_roam_back_strands_nothing_in_either_cell():
    runtime = CampusRuntime(
        _roam_spec(roam_back_s=1.5), sanitize=True
    )
    runtime.run()
    campus = runtime.campus
    assert campus.membership["walker"] == "c0"
    for name, holds in (("c0", True), ("c1", False)):
        cell = campus.cells[name]
        assert ("walker" in cell.stations) is holds
        assert cell.scheduler.is_associated("walker") is holds
        if not holds:
            assert cell.scheduler.token_rate("walker") == 0.0
            assert all(
                lis.address != "walker"
                for lis in cell.channel.listeners
            )
    # The walker's flows restarted per landing: original, @r1, @r2.
    names = sorted(
        n for n in campus.throughputs_mbps() if n.startswith("walker")
    )
    assert names == [
        "walker/udp-up", "walker/udp-up@r1", "walker/udp-up@r2",
    ]


# ----------------------------------------------------------------------
# T_init exactly once per (re)association
# ----------------------------------------------------------------------
def test_destination_grants_initial_tokens_exactly_once():
    runtime = CampusRuntime(_roam_spec())
    dest = runtime.campus.cells["c1"].scheduler
    grants = []
    real_associate = dest.associate

    def counting_associate(station):
        result = real_associate(station)
        if station == "walker":
            grants.append(dest.tokens_us("walker"))
        return result

    dest.associate = counting_associate
    runtime.run()
    # One grant, and at grant time the bucket held exactly T_init.
    assert grants == [TbrConfig().initial_tokens_us]


def test_landing_bucket_is_fresh_not_inherited():
    # The walker runs saturated downlink in c0, so its bucket is deep
    # in debt when the roam fires; the destination bucket must start
    # from T_init, not inherit the debt.
    runtime = CampusRuntime(_roam_spec(downlink=True))
    source = runtime.campus.cells["c0"].scheduler
    debt = {}
    real_disassociate = source.disassociate

    def recording_disassociate(station):
        if station == "walker":
            debt["tokens_us"] = source.tokens_us("walker")
        return real_disassociate(station)

    source.disassociate = recording_disassociate
    runtime.run()
    assert debt["tokens_us"] < TbrConfig().initial_tokens_us
    dest = runtime.campus.cells["c1"].scheduler
    assert dest.is_associated("walker")
    # Ran after landing, so below T_init — but never the imported debt.
    assert dest.tokens_us("walker") > debt["tokens_us"]


# ----------------------------------------------------------------------
# packet conservation and mid-exchange roams
# ----------------------------------------------------------------------
@pytest.mark.parametrize("downlink", [False, True])
def test_roam_leaks_no_pooled_packets(downlink):
    result = run_spec(
        _roam_spec(roam_back_s=1.5, downlink=downlink), sanitize=True
    )
    assert result.pool_leaked == 0
    assert result.roams_fired == 2


def test_roam_during_in_flight_mac_exchange_aborts_cleanly():
    # Cross-channel cells, saturated downlink: the AP MAC holds a
    # frame for the walker when the roam fires, and the walker lands
    # on a *different* RF channel — the orphaned exchange must retry
    # out and drop, pools must balance, and the sanitized run must
    # stay clean.
    runtime = CampusRuntime(
        _roam_spec(downlink=True, channels=(1, 6)), sanitize=True
    )
    source_mac = runtime.campus.cells["c0"].ap.mac
    observed = {}
    runtime.campus.sim.schedule(
        ROAM_S * 1e6 - 1.0,
        lambda: observed.update(loaded=source_mac.busy_with_frame),
    )
    runtime.run()
    assert observed["loaded"] is not None  # mid-exchange when it fired
    assert source_mac.tx_dropped >= 1
    assert runtime.pool_leaked() == 0


def test_roam_during_in_flight_mac_exchange_may_complete_cross_cell():
    # Same handoff on co-channel cells: the receiver reappears within
    # RF earshot, so the in-flight exchange may complete through the
    # coupled medium instead of aborting.  Either way: clean pools,
    # clean sanitizer, walker lives in c1.
    runtime = CampusRuntime(_roam_spec(downlink=True), sanitize=True)
    runtime.run()
    assert runtime.pool_leaked() == 0
    assert runtime.campus.membership["walker"] == "c1"


# ----------------------------------------------------------------------
# the paper's claim survives the handoff
# ----------------------------------------------------------------------
def _window_shares(cell, start_us, end_us):
    """Occupancy shares over records inside ``[start_us, end_us)``."""
    totals = {}
    for record in cell.usage.records:
        if start_us <= record.time < end_us:
            totals[record.station] = (
                totals.get(record.station, 0.0) + record.airtime_us
            )
    grand = sum(totals.values())
    return {name: t / grand for name, t in totals.items()}


def test_tbr_reconverges_to_fair_share_in_both_cells():
    # Two fast TCP uploaders per cell plus the slow walker (TCP up,
    # the workload TBR regulates through its ACK clock): c0 runs
    # 3-way before the roam and 2-way after; c1 the reverse.  The
    # cells sit on different RF channels so each regulator sees only
    # its own cell, and shares are sampled over the *settled* tail of
    # each phase — the paper's claim is about converged occupancy,
    # not the transient.
    roam_s, warmup_s, seconds = 4.0, 1.0, 6.0
    cells = []
    for i in range(2):
        stations = [
            StationSpec(f"c{i}l{j + 1}", rate_mbps=11.0)
            for j in range(2)
        ]
        if i == 0:
            stations.append(StationSpec("walker", rate_mbps=1.0))
        cells.append(
            CellSpec(
                name=f"c{i}",
                channel=(1, 6)[i],
                stations=tuple(stations),
                flows=tuple(
                    FlowSpec(station=s.name, kind="tcp", direction="up")
                    for s in stations
                ),
            )
        )
    spec = ScenarioSpec(
        name="reconverge",
        scheduler="tbr",
        stations=(),
        flows=(),
        timeline=(
            RoamEvent(
                at_s=roam_s, station="walker",
                from_cell="c0", to_cell="c1",
                delay_s=ASSOC_DELAY_S,
            ),
        ),
        seconds=seconds,
        warmup_seconds=warmup_s,
        seed=7,
        campus=CampusSpec(
            cells=tuple(cells), adjacency=(("c0", "c1"),)
        ),
    )
    runtime = CampusRuntime(spec)
    for cell in runtime.campus.cells.values():
        cell.usage.keep_records = True
    runtime.run()
    split_us = roam_s * 1e6
    end_us = (warmup_s + seconds) * 1e6
    settle_us = 1.0e6
    c0 = runtime.campus.cells["c0"]
    c1 = runtime.campus.cells["c1"]

    before = _window_shares(c0, warmup_s * 1e6 + settle_us, split_us)
    assert set(before) == {"c0l1", "c0l2", "walker"}
    for station, share in before.items():
        assert share == pytest.approx(1 / 3, abs=0.12), (station, before)

    after = _window_shares(c0, split_us + settle_us, end_us)
    assert set(after) == {"c0l1", "c0l2"}
    for station, share in after.items():
        assert share == pytest.approx(1 / 2, abs=0.12), (station, after)

    landed = _window_shares(c1, split_us + settle_us, end_us)
    assert set(landed) == {"c1l1", "c1l2", "walker"}
    for station, share in landed.items():
        assert share == pytest.approx(1 / 3, abs=0.12), (station, landed)


def test_roams_are_visible_in_merged_occupancy():
    result = run_spec(_roam_spec(seconds=3.0))
    # The walker occupied the campus from both cells in one window.
    assert result.cell_occupancy["c0"].get("walker", 0.0) > 0.0
    assert result.cell_occupancy["c1"].get("walker", 0.0) > 0.0
    assert result.occupancy["walker"] == pytest.approx(
        result.cell_occupancy["c0"]["walker"]
        + result.cell_occupancy["c1"]["walker"]
    )


# ----------------------------------------------------------------------
# composition with the runtime switches
# ----------------------------------------------------------------------
def test_campus_family_is_invariant_under_sanitize_and_fastforward():
    spec = build_spec("campus", seconds=2.0, warmup_s=0.5)
    renders = {
        render_result(
            run_spec(spec, sanitize=sanitize, fast_forward=fast_forward)
        )
        for sanitize in (False, True)
        for fast_forward in (False, True)
    }
    assert len(renders) == 1


def test_campus_runs_never_engage_the_fast_forward_engine():
    spec = build_spec("campus", seconds=2.0, warmup_s=0.5)
    result = run_spec(spec, fast_forward=True)
    assert result.fast_forwards == 0
    assert result.fast_forwarded_s == 0.0
