"""CLI surface of the store/queue layers: --missing-only, query,
worker, verify-cache --reindex, --queue spool.

The acceptance bar for ``--missing-only``: a half-warm sweep must
*report* the cached/missing split and *execute* exactly the missing
half, proven by the executor's own stats line.
"""

import re

import pytest

from repro.campaign.cli import main as campaign_main
from repro.scenario.cli import main as scenario_main

CHEAP = ["--set", "seconds=0.5", "--jobs", "1", "--quiet"]


def run_sweep(capsys, *extra, axis="seed=1,2"):
    args = ["sweep", "churn", "--axis", axis] + CHEAP + list(extra)
    rc = scenario_main(args)
    captured = capsys.readouterr()
    return rc, captured.out + captured.err


# ----------------------------------------------------------------------
# --missing-only (scenario sweep)
# ----------------------------------------------------------------------
def test_half_warm_sweep_runs_exactly_the_missing_half(tmp_path, capsys):
    cache = ["--cache-dir", str(tmp_path / "store")]
    # Warm half of a 4-point sweep.
    rc, out = run_sweep(capsys, *cache, axis="seed=1,2")
    assert rc == 0 and "2 executed" in out
    # The half-warm sweep reports the split and runs only the rest.
    rc, out = run_sweep(capsys, *cache, "--missing-only",
                        axis="seed=1,2,3,4")
    assert rc == 0
    assert "plan: 2 cached, 2 missing of 4 job(s)" in out
    assert re.search(r"\b2 executed, 0 cache hits", out)
    # Fill-the-store mode renders nothing.
    assert "Scenario churn" not in out
    # Fully warm now: nothing to do, exit 0.
    rc, out = run_sweep(capsys, *cache, "--missing-only",
                        axis="seed=1,2,3,4")
    assert rc == 0
    assert "plan: 4 cached, 0 missing of 4 job(s)" in out
    assert "nothing to execute" in out


def test_missing_only_requires_the_store(tmp_path, capsys):
    rc, out = run_sweep(
        capsys, "--cache-dir", str(tmp_path / "s"), "--missing-only",
        "--no-cache",
    )
    assert rc == 2
    assert "--missing-only needs the result store" in out


# ----------------------------------------------------------------------
# --missing-only (campaign)
# ----------------------------------------------------------------------
def test_campaign_missing_only(tmp_path, capsys):
    cache = ["--cache-dir", str(tmp_path / "store")]
    args = ["fig2", "--jobs", "1", "--seconds", "0.5", "--quiet"] + cache
    assert campaign_main(args) == 0
    capsys.readouterr()
    assert campaign_main(args + ["--missing-only"]) == 0
    out = capsys.readouterr().out
    assert "plan: 2 cached, 0 missing" in out
    assert "nothing to execute" in out


# ----------------------------------------------------------------------
# repro campaign query
# ----------------------------------------------------------------------
def test_query_lists_store_rows(tmp_path, capsys):
    store = str(tmp_path / "store")
    assert campaign_main(
        ["fig2", "--jobs", "1", "--seconds", "0.5", "--quiet",
         "--cache-dir", store]
    ) == 0
    capsys.readouterr()
    assert campaign_main(["query", "--cache-dir", store]) == 0
    out = capsys.readouterr().out
    assert "2 entrie(s)" in out
    assert "fig2" in out
    # Filters narrow and digest prefixes resolve.
    assert campaign_main(
        ["query", "--cache-dir", store, "--experiment", "nonesuch"]
    ) == 0
    assert "0 entrie(s)" in capsys.readouterr().out
    digest = None
    assert campaign_main(["query", "--cache-dir", store]) == 0
    for line in capsys.readouterr().out.splitlines():
        match = re.match(r"^([0-9a-f]{16})\s", line)
        if match:
            digest = match.group(1)
            break
    assert digest is not None
    assert campaign_main(
        ["query", "--cache-dir", store, "--digest", digest[:8], "--stat"]
    ) == 0
    out = capsys.readouterr().out
    assert "size" in out or "bytes" in out


# ----------------------------------------------------------------------
# verify-cache: index consistency + --reindex
# ----------------------------------------------------------------------
def test_verify_cache_reports_and_rebuilds_index(tmp_path, capsys):
    from repro.campaign.store import ResultStore

    store_dir = str(tmp_path / "store")
    assert campaign_main(
        ["fig2", "--jobs", "1", "--seconds", "0.5", "--quiet",
         "--cache-dir", store_dir]
    ) == 0
    capsys.readouterr()
    assert campaign_main(["verify-cache", "--cache-dir", store_dir]) == 0
    assert "index: consistent" in capsys.readouterr().out
    # Lose the index entirely (pre-index cache dir / crashed writer).
    store = ResultStore(store_dir)
    store.index.path.unlink()
    assert campaign_main(["verify-cache", "--cache-dir", store_dir]) == 0
    out = capsys.readouterr().out
    assert "2 unindexed entrie(s)" in out
    assert "--reindex" in out  # hint printed
    assert campaign_main(
        ["verify-cache", "--cache-dir", store_dir, "--reindex"]
    ) == 0
    out = capsys.readouterr().out
    assert "reindexed: 2 entrie(s), 2 added, 0 dropped" in out
    assert campaign_main(["verify-cache", "--cache-dir", store_dir]) == 0
    assert "index: consistent" in capsys.readouterr().out


# ----------------------------------------------------------------------
# spool backend through the CLIs
# ----------------------------------------------------------------------
def test_sweep_queue_spool_validates_flags(tmp_path, capsys):
    rc, out = run_sweep(
        capsys, "--cache-dir", str(tmp_path / "s"), "--queue", "spool"
    )
    assert rc == 2
    assert "--queue spool requires --spool-dir" in out


def test_sweep_through_spool_backend(tmp_path, capsys):
    cache = ["--cache-dir", str(tmp_path / "store")]
    rc, out = run_sweep(
        capsys, *cache, "--queue", "spool",
        "--spool-dir", str(tmp_path / "spool"), "--spool-workers", "2",
        axis="seed=1,2",
    )
    assert rc == 0
    assert "2 executed" in out
    assert "Scenario churn" in out
    # Warm rerun through the pool path sees the spool-written entries.
    rc, out = run_sweep(capsys, *cache, axis="seed=1,2")
    assert rc == 0
    assert "0 executed, 2 cache hits" in out


def test_worker_cli_drains_a_prepared_spool(tmp_path, capsys):
    from repro.campaign import queue as q
    from repro.campaign.job import make_job
    from repro.campaign.policy import RetryPolicy
    from repro.campaign.store import ResultStore

    store = ResultStore(tmp_path / "store")
    cfg = q.SpoolConfig(
        store_root=str(store.root),
        retry=RetryPolicy(max_attempts=2, backoff_base_s=0.01),
    )
    jobs = [
        make_job("cli-test", f"k{i}", "repro.campaign.faults:echo",
                 {"value": i})
        for i in range(3)
    ]
    q.enqueue(tmp_path / "spool", cfg, [(j.digest, j) for j in jobs])
    rc = campaign_main(
        ["worker", "--spool-dir", str(tmp_path / "spool"),
         "--idle-exit", "0.1", "--quiet"]
    )
    assert rc == 0
    assert "processed 3 claim(s)" in capsys.readouterr().out
    assert all(store.contains(j.digest) for j in jobs)
