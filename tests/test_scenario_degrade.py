"""ChannelDegradeEvent: loss bursts installed and removed mid-run.

The degrade window swaps the cell's channel loss model in place at
``at_s`` and restores the prior model ``duration_s`` later; these tests
pin the semantics — throughput actually drops, the restore actually
restores, targeting one station hurts only that link, runs stay
deterministic, and the spec validator rejects nonsense — plus the
paper-level smoke: TBR keeps its time-share fairness through a loss
burst that FIFO-era throughput fairness would let a slow station turn
into everyone's problem.
"""

import pytest

from repro.core.tbr import TbrConfig
from repro.scenario import (
    ChannelDegradeEvent,
    FlowSpec,
    ScenarioSpec,
    StationSpec,
)
from repro.scenario.runner import run_spec


def _spec(name, *, scheduler="fifo", timeline=(), seconds=3.0, seed=7):
    # Uplink UDP regulation needs the client-cooperation path: the AP
    # piggybacks defer hints (notify_clients) and the stations honor
    # them (cooperate_with_tbr); FIFO runs are plain DCF.
    coop = scheduler == "tbr"
    return ScenarioSpec(
        name=name,
        scheduler=scheduler,
        tbr_config=TbrConfig(notify_clients=True) if coop else None,
        stations=(
            StationSpec(name="fast", rate_mbps=11.0, cooperate_with_tbr=coop),
            StationSpec(name="slow", rate_mbps=1.0, cooperate_with_tbr=coop),
        ),
        flows=(
            FlowSpec(station="fast", kind="udp", rate_mbps=6.0),
            FlowSpec(station="slow", kind="udp", rate_mbps=6.0),
        ),
        timeline=timeline,
        seconds=seconds,
        seed=seed,
    )


BURST = ChannelDegradeEvent(at_s=1.0, duration_s=1.0, loss_probability=0.5)


def test_loss_burst_reduces_throughput_and_is_deterministic():
    clean = run_spec(_spec("degrade-off"))
    burst = run_spec(_spec("degrade-on", timeline=(BURST,)))
    again = run_spec(_spec("degrade-on", timeline=(BURST,)))
    assert burst.total_mbps < clean.total_mbps
    assert burst.timeline_fired == 1  # the restore is not a spec event
    # Identical spec -> identical run, loss burst and all.
    assert burst.throughput_mbps == again.throughput_mbps
    assert burst.occupancy == again.occupancy


def test_restore_returns_to_clean_channel():
    # Same burst, but the measurement window opens after it closes:
    # the restored channel carries full throughput again.
    early = ChannelDegradeEvent(at_s=0.5, duration_s=1.0, loss_probability=0.9)
    spec = ScenarioSpec(
        name="degrade-then-measure",
        stations=(StationSpec(name="fast", rate_mbps=11.0),),
        flows=(FlowSpec(station="fast", kind="udp", rate_mbps=4.0),),
        timeline=(early,),
        warmup_seconds=2.0,
        seconds=2.0,
        seed=3,
    )
    clean = ScenarioSpec(
        name="no-degrade",
        stations=(StationSpec(name="fast", rate_mbps=11.0),),
        flows=(FlowSpec(station="fast", kind="udp", rate_mbps=4.0),),
        warmup_seconds=2.0,
        seconds=2.0,
        seed=3,
    )
    degraded = run_spec(spec)
    baseline = run_spec(clean)
    assert degraded.throughput_mbps["fast"] == pytest.approx(
        baseline.throughput_mbps["fast"], rel=0.05
    )


def test_targeted_degrade_hits_only_the_named_link():
    targeted = ChannelDegradeEvent(
        at_s=0.5, duration_s=2.0, loss_probability=0.6, station="fast"
    )
    spec = ScenarioSpec(
        name="degrade-one-link",
        stations=(
            StationSpec(name="fast", rate_mbps=11.0),
            StationSpec(name="other", rate_mbps=11.0),
        ),
        flows=(
            FlowSpec(station="fast", kind="udp", rate_mbps=3.0),
            FlowSpec(station="other", kind="udp", rate_mbps=3.0),
        ),
        timeline=(targeted,),
        seconds=3.0,
        seed=3,
    )
    result = run_spec(spec)
    assert result.throughput_mbps["fast"] < result.throughput_mbps["other"] * 0.8


def test_tbr_holds_time_fairness_through_a_loss_burst():
    """The paper's point, under chaos: during a loss burst the slow
    station's retransmissions eat even more airtime.  Under DCF/FIFO it
    dominates the channel outright; TBR's defer hints claw a large part
    of that airtime back, and the fast station converts it into
    strictly more goodput — the time-fairness dividend survives a
    degraded channel."""
    fifo = run_spec(_spec("burst-fifo", scheduler="fifo", timeline=(BURST,)))
    tbr = run_spec(_spec("burst-tbr", scheduler="tbr", timeline=(BURST,)))
    # FIFO: the 1 Mbps station owns the air despite the burst.
    assert fifo.occupancy["slow"] > 0.8
    # TBR: a sizable chunk of that airtime is reclaimed...
    assert tbr.occupancy["slow"] < fifo.occupancy["slow"] - 0.10
    assert tbr.occupancy["fast"] > fifo.occupancy["fast"] * 1.5
    # ...and the fast station converts it into goodput.
    assert tbr.throughput_mbps["fast"] > fifo.throughput_mbps["fast"] * 1.5


def _sample_loss_models(spec, times_s):
    """Run ``spec`` and sample ``channel.loss`` at each probe time."""
    from repro.scenario.builder import ScenarioRuntime
    from repro.sim import us_from_s

    runtime = ScenarioRuntime(spec)
    cell = runtime.cell
    samples = {}
    for t in times_s:
        cell.sim.schedule_at(
            us_from_s(t),
            lambda t=t: samples.__setitem__(t, cell.channel.loss),
        )
    runtime.run()
    return cell, samples


def test_nested_degrade_windows_restore_inside_out():
    # B opens and closes strictly inside A: closing B must restore A's
    # model (not the clean channel), and closing A restores the base.
    a = ChannelDegradeEvent(at_s=0.5, duration_s=2.0, loss_probability=0.3)
    b = ChannelDegradeEvent(at_s=1.0, duration_s=0.5, loss_probability=0.9)
    spec = _spec("degrade-nested", timeline=(a, b))
    cell, at = _sample_loss_models(spec, (0.3, 0.7, 1.2, 1.7, 2.7))
    base, a_model, b_model = at[0.3], at[0.7], at[1.2]
    assert a_model is not base and b_model is not base
    assert b_model is not a_model
    assert at[1.7] is a_model  # B closed -> back under A, not base
    assert at[2.7] is base     # A closed -> clean channel restored
    assert cell.channel.loss is base


def test_interleaved_degrade_windows_restore_correctly():
    # A then B overlap without nesting: A closes while B is still the
    # installed model, so A's restore must not clobber B; B's restore
    # then returns the base model even though it wasn't B's ``prior``.
    a = ChannelDegradeEvent(at_s=0.5, duration_s=1.0, loss_probability=0.3)
    b = ChannelDegradeEvent(at_s=1.0, duration_s=1.0, loss_probability=0.9)
    spec = _spec("degrade-interleaved", timeline=(a, b))
    cell, at = _sample_loss_models(spec, (0.3, 0.7, 1.2, 1.7, 2.2))
    base, a_model, b_model = at[0.3], at[0.7], at[1.2]
    assert a_model is not base and b_model is not base
    assert at[1.7] is b_model  # A's restore fired mid-B: B must survive
    assert at[2.2] is base     # B's restore skips dead A, lands on base
    assert cell.channel.loss is base


def test_overlapping_degrades_stay_deterministic():
    a = ChannelDegradeEvent(at_s=0.5, duration_s=1.5, loss_probability=0.4)
    b = ChannelDegradeEvent(at_s=1.0, duration_s=1.0, loss_probability=0.8)
    first = run_spec(_spec("degrade-overlap", timeline=(a, b)))
    second = run_spec(_spec("degrade-overlap", timeline=(a, b)))
    assert first.throughput_mbps == second.throughput_mbps
    assert first.events_by_category == second.events_by_category
    assert first.pool_leaked == 0


def test_degrade_validation_rejects_nonsense():
    base = _spec("bad", timeline=(
        ChannelDegradeEvent(at_s=1.0, duration_s=-1.0, loss_probability=0.5),
    ))
    with pytest.raises(ValueError, match="duration_s"):
        base.validate()
    with pytest.raises(ValueError, match="loss_probability"):
        _spec("bad2", timeline=(
            ChannelDegradeEvent(at_s=1.0, duration_s=1.0, loss_probability=1.5),
        )).validate()
    with pytest.raises(ValueError, match="unknown station"):
        _spec("bad3", timeline=(
            ChannelDegradeEvent(
                at_s=1.0, duration_s=1.0, loss_probability=0.5,
                station="ghost",
            ),
        )).validate()
