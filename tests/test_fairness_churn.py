"""The fairness-churn experiment: golden render + convergence bounds.

Pins the per-phase occupancy-share tables byte for byte (same contract
as the fig8/fig9 goldens) and asserts the substantive claims: under
TBR every phase's shares sit near 1/n_active, and after the true leave
the survivors re-converge to 1/n_active within a bounded number of
FILLEVENTs.  The FIFO baseline must keep showing the anomaly — the
slow station hogging the channel whenever it is present — or the
contrast the experiment exists to demonstrate has silently vanished.
"""

import pathlib

import pytest

from repro.experiments import fairness_churn

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: FILLEVENT budget for post-leave re-convergence: four probe windows
#: of 25 FILLEVENTs each (1 s at the default 10 ms fill interval); the
#: golden run converges in the first window (25).
CONVERGE_BUDGET_FILLS = 100


@pytest.fixture(scope="module")
def result():
    return fairness_churn.run(seed=1, seconds=3.0)


def test_render_matches_golden(result):
    rendered = fairness_churn.render(result) + "\n"
    expected = (GOLDEN_DIR / "fairness_churn_seed1_3s.txt").read_text()
    assert rendered == expected


def test_tbr_shares_track_fair_share_in_every_phase(result):
    run = result.tbr
    for phase in fairness_churn.PHASES:
        fair = 1.0 / run.n_active[phase]
        shares = run.shares[phase]
        active = [s for s in shares if not (phase == "away" and s == "leaver")]
        for station in active:
            assert shares[station] == pytest.approx(fair, abs=0.12), (
                f"{station} share {shares[station]:.3f} in phase {phase!r} "
                f"strays from fair share {fair:.3f}"
            )


def test_departed_station_stops_consuming_channel_time(result):
    # While away, the leaver's only attributable airtime is the frame
    # that was already in flight at the instant it left.
    for scheduler in fairness_churn.SCHEDULERS:
        away = result.runs[scheduler].shares["away"]
        assert away.get("leaver", 0.0) < 0.01


def test_post_leave_shares_reconverge_within_fill_budget(result):
    assert result.tbr.converge_fills is not None
    assert result.tbr.converge_fills <= CONVERGE_BUDGET_FILLS


def test_fifo_baseline_still_shows_the_anomaly(result):
    # The 1 Mbps leaver hogs the channel under FIFO whenever present —
    # the motivating anomaly; TBR holds it to its time share.
    assert result.fifo.shares["before"]["leaver"] > 0.45
    assert result.tbr.shares["before"]["leaver"] < 0.40
