"""Tests for the TCP Reno implementation over a controllable pipe."""

import pytest

from repro.sim import Simulator, us_from_ms
from repro.transport import FlowStats, TcpParams, TcpReceiver, TcpSender


class Pipe:
    """A bidirectional delay pipe with scriptable segment drops."""

    def __init__(self, sim, delay_us=5000.0):
        self.sim = sim
        self.delay_us = delay_us
        self.sender = None
        self.receiver = None
        self.drop_data = set()  # segment seqs to drop once
        self.drop_every_data = False
        self.data_sent = []

    def tx_data(self, size_bytes, seg):
        self.data_sent.append(seg.seq)
        if self.drop_every_data:
            return
        if seg.seq in self.drop_data:
            self.drop_data.discard(seg.seq)
            return
        self.sim.schedule(self.delay_us, self.receiver.on_segment, seg)

    def tx_ack(self, size_bytes, ack):
        self.sim.schedule(self.delay_us, self.sender.on_ack, ack)


def make_connection(sim, params=None, delay_us=5000.0):
    pipe = Pipe(sim, delay_us)
    stats = FlowStats(sim, "flow")
    sender = TcpSender(sim, "snd", pipe.tx_data, params)
    receiver = TcpReceiver(sim, "rcv", pipe.tx_ack, params, stats)
    pipe.sender = sender
    pipe.receiver = receiver
    return pipe, sender, receiver, stats


def test_bulk_transfer_delivers_in_order():
    sim = Simulator()
    pipe, sender, receiver, stats = make_connection(sim)
    sender.set_unbounded()
    sim.run(until=us_from_ms(500))
    assert stats.bytes_delivered > 100_000
    # Acks may still be in flight; the receiver can only be ahead.
    assert receiver.rcv_nxt >= sender.snd_una
    assert receiver.rcv_nxt == stats.bytes_delivered
    assert sender.timeouts == 0
    assert sender.retransmits == 0


def test_task_completes_and_fires_callback():
    sim = Simulator()
    pipe, sender, receiver, stats = make_connection(sim)
    fired = []
    sender.on_complete = lambda: fired.append(sim.now)
    sender.supply(14600)  # 10 segments
    sender.finish()
    sim.run(until=us_from_ms(2000))
    assert fired, "completion callback must fire"
    assert stats.bytes_delivered == 14600
    assert sender.snd_una == 14600


def test_slow_start_doubles_window_per_rtt():
    sim = Simulator()
    params = TcpParams(init_cwnd_segments=2.0)
    pipe, sender, receiver, stats = make_connection(sim, params)
    sender.set_unbounded()
    # After a few RTTs cwnd should have grown well beyond initial.
    sim.run(until=us_from_ms(100))  # 10 RTTs at 10 ms
    assert sender.cwnd > 10 * params.mss


def test_delayed_ack_ratio():
    sim = Simulator()
    params = TcpParams(delack_segments=2)
    pipe, sender, receiver, stats = make_connection(sim)
    sender.set_unbounded()
    sim.run(until=us_from_ms(300))
    # Roughly one ack per two segments (within slack for window edges).
    ratio = receiver.acks_sent / max(1, stats.segments_delivered)
    assert ratio < 0.7


def test_single_loss_triggers_fast_retransmit_not_timeout():
    sim = Simulator()
    pipe, sender, receiver, stats = make_connection(sim)
    pipe.drop_data.add(1460 * 10)  # drop the 11th segment once
    sender.set_unbounded()
    sim.run(until=us_from_ms(400))
    assert sender.fast_retransmits >= 1
    assert sender.timeouts == 0
    assert receiver.rcv_nxt > 1460 * 20  # recovered and moved on


def test_fast_recovery_halves_cwnd():
    sim = Simulator()
    pipe, sender, receiver, stats = make_connection(sim)
    sender.set_unbounded()
    sim.run(until=us_from_ms(150))
    before = sender.cwnd
    pipe.drop_data.add(sender.snd_nxt)  # next new segment lost
    sim.run(until=us_from_ms(300))
    assert sender.fast_retransmits >= 1
    assert sender.cwnd < before


def test_total_blackout_uses_rto_backoff():
    sim = Simulator()
    pipe, sender, receiver, stats = make_connection(sim)
    pipe.drop_every_data = True
    sender.supply(1460)
    sender.finish()
    sim.run(until=us_from_ms(4000))
    assert sender.timeouts >= 2
    assert sender.rto > TcpParams().min_rto_us


def test_recovery_after_blackout():
    sim = Simulator()
    pipe, sender, receiver, stats = make_connection(sim)
    pipe.drop_every_data = True
    sender.supply(14600)
    sender.finish()
    sim.run(until=us_from_ms(700))

    def heal():
        pipe.drop_every_data = False

    sim.schedule(0.0, heal)
    sim.run(until=us_from_ms(8000))
    assert stats.bytes_delivered == 14600


def test_out_of_order_segments_buffered():
    sim = Simulator()
    params = TcpParams()
    stats = FlowStats(sim, "f")
    acks = []
    receiver = TcpReceiver(sim, "r", lambda s, a: acks.append(a.ackno),
                           params, stats)
    from repro.transport.tcp import TcpSegment

    receiver.on_segment(TcpSegment(1460, 1460, 1.0))  # hole at 0
    assert stats.bytes_delivered == 0
    assert acks[-1] == 0  # dup ack advertising the hole
    receiver.on_segment(TcpSegment(0, 1460, 2.0))
    assert stats.bytes_delivered == 2920
    assert receiver.rcv_nxt == 2920


def test_duplicate_segment_counted_and_acked():
    sim = Simulator()
    acks = []
    receiver = TcpReceiver(sim, "r", lambda s, a: acks.append(a.ackno))
    from repro.transport.tcp import TcpSegment

    receiver.on_segment(TcpSegment(0, 1460, 1.0))
    receiver.on_segment(TcpSegment(0, 1460, 1.0))
    assert receiver.duplicates == 1
    assert acks[-1] == 1460


def test_delack_timer_flushes_single_segment():
    sim = Simulator()
    params = TcpParams(delack_segments=2, delack_timeout_us=40_000.0)
    acks = []
    receiver = TcpReceiver(sim, "r", lambda s, a: acks.append(sim.now), params)
    from repro.transport.tcp import TcpSegment

    receiver.on_segment(TcpSegment(0, 1460, 1.0))
    assert acks == []  # delayed
    sim.run(until=100_000.0)
    assert len(acks) == 1
    assert acks[0] == pytest.approx(40_000.0)


def test_rtt_estimation_sets_rto():
    sim = Simulator()
    pipe, sender, receiver, stats = make_connection(sim, delay_us=10_000.0)
    sender.set_unbounded()
    sim.run(until=us_from_ms(300))
    assert sender.srtt is not None
    assert sender.srtt == pytest.approx(20_000.0, rel=0.5)
    assert sender.rto >= TcpParams().min_rto_us


def test_window_limits_inflight():
    sim = Simulator()
    params = TcpParams(rwnd_segments=4, init_ssthresh_segments=100.0)
    pipe, sender, receiver, stats = make_connection(sim, params)
    sender.set_unbounded()
    sim.run(until=us_from_ms(200))
    assert sender.flight_size <= 4 * params.mss


def test_supply_validation():
    sim = Simulator()
    sender = TcpSender(sim, "s", lambda s, p: None)
    with pytest.raises(ValueError):
        sender.supply(-1)


def test_params_validation():
    with pytest.raises(ValueError):
        TcpParams(mss=0)
    with pytest.raises(ValueError):
        TcpParams(rwnd_segments=0)
    with pytest.raises(ValueError):
        TcpParams(delack_segments=0)


def test_sub_mss_tail_segment():
    sim = Simulator()
    pipe, sender, receiver, stats = make_connection(sim)
    done = []
    sender.on_complete = lambda: done.append(True)
    sender.supply(2000)  # 1460 + 540 tail
    sender.finish()
    sim.run(until=us_from_ms(1000))
    assert done
    assert stats.bytes_delivered == 2000
