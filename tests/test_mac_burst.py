"""Tests for OAR-style opportunistic bursting in the MAC."""

import pytest

from repro.mac import MacConfig
from repro.phy import DOT11B_LONG_PREAMBLE

from tests.conftest import MacHarness, SimplePacket

PHY = DOT11B_LONG_PREAMBLE


def burst_harness(rates, base=1.0, seed=1):
    h = MacHarness(len(rates), rates=rates, seed=seed)
    for mac in h.macs:
        mac.config = MacConfig(burst_base_rate_mbps=base)
    return h


def test_burst_frames_config():
    config = MacConfig(burst_base_rate_mbps=2.0)
    assert config.burst_frames(11.0) == 5
    assert config.burst_frames(2.0) == 1
    assert config.burst_frames(1.0) == 1  # never below one frame
    assert MacConfig().burst_frames(11.0) == 1  # disabled by default


def test_burst_config_validation():
    with pytest.raises(ValueError):
        MacConfig(burst_base_rate_mbps=-1.0)


def test_burst_sends_sifs_spaced_frames():
    h = burst_harness([11.0], base=1.0)
    starts = []
    h.channel.add_sniffer(
        lambda f, d, c, s, e: starts.append((s, e)) if f.is_data else None
    )
    h.saturate(0, depth=20)
    h.run_seconds(0.05)
    # Within a burst, gaps between consecutive data frames equal
    # SIFS + ACK + SIFS exactly (no backoff).
    from repro.phy import ack_airtime_us

    burst_gap = PHY.sifs_us + ack_airtime_us(PHY, 2.0) + PHY.sifs_us
    gaps = [b[0] - a[1] for a, b in zip(starts, starts[1:])]
    sifs_gaps = [g for g in gaps if abs(g - burst_gap) < 1e-6]
    assert len(sifs_gaps) >= 8  # most of an 11-frame burst


def test_burst_limited_to_rate_ratio():
    h = burst_harness([11.0], base=1.0)
    starts = []
    h.channel.add_sniffer(
        lambda f, d, c, s, e: starts.append((s, e)) if f.is_data else None
    )
    h.saturate(0, depth=40)
    h.run_seconds(0.2)
    from repro.phy import ack_airtime_us

    burst_gap = PHY.sifs_us + ack_airtime_us(PHY, 2.0) + PHY.sifs_us
    # Count consecutive SIFS-spaced runs; none may exceed 11 frames.
    run_length = 1
    max_run = 1
    for a, b in zip(starts, starts[1:]):
        if abs((b[0] - a[1]) - burst_gap) < 1e-6:
            run_length += 1
        else:
            run_length = 1
        max_run = max(max_run, run_length)
    assert max_run == 11


def test_burst_restores_time_shares_in_mixed_cell():
    h = burst_harness([1.0, 11.0], base=1.0, seed=5)
    airtime = {0: 0.0, 1: 0.0}
    for i, mac in enumerate(h.macs):
        mac.add_completion_listener(
            lambda rep, i=i: airtime.__setitem__(i, airtime[i] + rep.airtime_us)
        )
    h.saturate(0)
    h.saturate(1)
    h.run_seconds(3.0)
    thr0 = h.throughput_mbps("sta0", 3.0)
    thr1 = h.throughput_mbps("sta1", 3.0)
    # Time shares near equal, throughput ratio near the rate ratio.
    assert airtime[0] / airtime[1] < 1.6
    assert thr1 / thr0 > 4.0


def test_burst_aggregate_beats_plain_dcf():
    plain = MacHarness(2, rates=[1.0, 11.0], seed=7)
    plain.saturate(0)
    plain.saturate(1)
    plain.run_seconds(3.0)
    plain_total = sum(plain.rx_bytes.values())

    oar = burst_harness([1.0, 11.0], base=1.0, seed=7)
    oar.saturate(0)
    oar.saturate(1)
    oar.run_seconds(3.0)
    oar_total = sum(oar.rx_bytes.values())
    assert oar_total > 1.5 * plain_total


def test_burst_single_slow_station_unchanged():
    # A 1 Mbps station has a burst window of one frame: identical to DCF.
    plain = MacHarness(1, rates=[1.0], seed=2)
    plain.saturate(0)
    plain.run_seconds(2.0)

    oar = burst_harness([1.0], base=1.0, seed=2)
    oar.saturate(0)
    oar.run_seconds(2.0)
    assert oar.rx_bytes["sta0"] == plain.rx_bytes["sta0"]


def test_burst_ends_on_empty_queue():
    h = burst_harness([11.0], base=1.0)
    # Only 3 packets: the burst closes early and the MAC goes idle.
    for _ in range(3):
        h.scheds[0].enqueue(SimplePacket("ap"))
    h.run_seconds(0.5)
    assert h.macs[0].tx_success == 3
    assert not h.macs[0].busy_with_frame
