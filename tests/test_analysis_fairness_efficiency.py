"""Tests for fairness indices and the fluid/task efficiency model."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    NodeSpec,
    PAPER_TABLE2_TCP_MBPS,
    Task,
    fluid_completion_times,
    jain_index,
    max_min_gap,
    normalized_gap,
    task_model_metrics,
)


def paper_node(name, rate):
    return NodeSpec(name, rate, beta_mbps=PAPER_TABLE2_TCP_MBPS[rate])


# ----------------------------------------------------------------------
# fairness indices
# ----------------------------------------------------------------------
def test_jain_perfectly_fair():
    assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)


def test_jain_single_user_min():
    assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)


def test_jain_accepts_dict():
    assert jain_index({"a": 2.0, "b": 2.0}) == pytest.approx(1.0)


def test_jain_all_zero_is_fair():
    assert jain_index([0.0, 0.0]) == 1.0


def test_jain_validation():
    with pytest.raises(ValueError):
        jain_index([])
    with pytest.raises(ValueError):
        jain_index([-1.0, 2.0])


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=20))
def test_jain_bounds(xs):
    idx = jain_index(xs)
    assert 1.0 / len(xs) - 1e-9 <= idx <= 1.0 + 1e-9


def test_gaps():
    assert max_min_gap([1.0, 4.0, 2.0]) == 3.0
    assert normalized_gap([2.0, 2.0]) == 0.0
    assert normalized_gap([0.0, 4.0]) == pytest.approx(2.0)


# ----------------------------------------------------------------------
# task model
# ----------------------------------------------------------------------
def equal_tasks(size_bits=8e6):
    return [
        Task(paper_node("slow", 1.0), size_bits),
        Task(paper_node("fast", 11.0), size_bits),
    ]


def test_rf_equal_tasks_finish_together():
    result = fluid_completion_times(equal_tasks(), "rf")
    times = list(result.completion_us.values())
    assert times[0] == pytest.approx(times[1])
    assert result.avg_task_time_us == pytest.approx(result.final_task_time_us)


def test_tf_fast_node_finishes_first():
    result = fluid_completion_times(equal_tasks(), "tf")
    assert result.completion_us["fast"] < result.completion_us["slow"]


def test_final_time_identical_under_both_notions():
    """Work conservation: the last bit leaves at the same time."""
    metrics = task_model_metrics(equal_tasks())
    assert metrics["rf"].final_task_time_us == pytest.approx(
        metrics["tf"].final_task_time_us, rel=1e-6
    )


def test_tf_avg_not_worse_than_rf():
    metrics = task_model_metrics(equal_tasks())
    assert metrics["tf"].avg_task_time_us <= metrics["rf"].avg_task_time_us


def test_slow_node_unaffected_by_tf():
    """The slow node completes at the same time under RF and TF when
    tasks are equal (Table 1's discussion)."""
    metrics = task_model_metrics(equal_tasks())
    assert metrics["tf"].completion_us["slow"] == pytest.approx(
        metrics["rf"].completion_us["slow"], rel=1e-6
    )


def test_completion_scales_with_size():
    small = fluid_completion_times(equal_tasks(4e6), "tf")
    large = fluid_completion_times(equal_tasks(8e6), "tf")
    assert large.final_task_time_us == pytest.approx(
        2 * small.final_task_time_us, rel=1e-6
    )


def test_single_task():
    result = fluid_completion_times(
        [Task(paper_node("only", 11.0), 8e6)], "tf"
    )
    # Alone, the node gets its full baseline.
    assert result.final_task_time_us == pytest.approx(
        8e6 / PAPER_TABLE2_TCP_MBPS[11.0]
    )


def test_unknown_notion_rejected():
    with pytest.raises(ValueError):
        fluid_completion_times(equal_tasks(), "max-min")


def test_duplicate_names_rejected():
    tasks = [
        Task(paper_node("x", 1.0), 1e6),
        Task(paper_node("x", 11.0), 1e6),
    ]
    with pytest.raises(ValueError):
        fluid_completion_times(tasks, "tf")


def test_task_validation():
    with pytest.raises(ValueError):
        Task(paper_node("a", 1.0), 0.0)


@given(
    st.lists(st.sampled_from([1.0, 2.0, 5.5, 11.0]), min_size=1, max_size=5),
    st.floats(min_value=1e5, max_value=1e8),
)
def test_task_model_invariants_equal_sizes(rates, bits):
    # The paper's Table 1 claims assume equal task sizes; with unequal
    # sizes the completion trajectories differ and FinalTaskTime need
    # not match.
    tasks = [Task(paper_node(f"n{i}", rate), bits) for i, rate in enumerate(rates)]
    rf = fluid_completion_times(tasks, "rf")
    tf = fluid_completion_times(tasks, "tf")
    assert tf.final_task_time_us == pytest.approx(
        rf.final_task_time_us, rel=1e-6
    )
    assert tf.avg_task_time_us <= rf.avg_task_time_us * (1 + 1e-9)
    assert all(t > 0 for t in rf.completion_us.values())
    assert all(t > 0 for t in tf.completion_us.values())


@given(
    st.lists(
        st.tuples(
            st.sampled_from([1.0, 2.0, 5.5, 11.0]),
            st.floats(min_value=1e5, max_value=1e8),
        ),
        min_size=1,
        max_size=5,
    )
)
def test_task_model_total_work_bounds(spec):
    # With arbitrary sizes only weaker bounds hold: everything completes,
    # and no notion finishes after the slowest-possible serial schedule.
    tasks = [
        Task(paper_node(f"n{i}", rate), bits) for i, (rate, bits) in enumerate(spec)
    ]
    betas = {f"n{i}": PAPER_TABLE2_TCP_MBPS[rate] for i, (rate, _) in enumerate(spec)}
    serial_bound = sum(bits / betas[f"n{i}"] for i, (_, bits) in enumerate(spec))
    for notion in ("rf", "tf"):
        result = fluid_completion_times(tasks, notion)
        assert len(result.completion_us) == len(tasks)
        assert result.final_task_time_us <= serial_bound * (1 + 1e-6)
