"""Campus core: topology, co-channel coupling, membership, spec rules.

The ESS layer's ground truth: cells on one shared kernel, media coupled
only when an adjacent pair shares an RF channel, every station a member
of exactly one cell, and the campus spec section rejecting the
configurations the runtime could never honour (duplicate stations
across cells, roams out of the wrong cell, events aimed at a station
mid-handoff).
"""

import pytest

from repro.campus import Campus, CampusSanitizer
from repro.scenario.spec import (
    CampusSpec,
    CellSpec,
    FlowSpec,
    LeaveEvent,
    RoamEvent,
    ScenarioSpec,
    StationSpec,
)
from repro.sim.sanitizer import InvariantViolation


def _two_cell_campus(
    *, channels=(1, 1), scheduler="fifo", seed=1
) -> Campus:
    campus = Campus(seed=seed, scheduler=scheduler)
    campus.add_cell("c0", channel=channels[0])
    campus.add_cell("c1", channel=channels[1])
    campus.connect("c0", "c1")
    return campus


# ----------------------------------------------------------------------
# topology
# ----------------------------------------------------------------------
def test_cells_share_one_simulator():
    campus = _two_cell_campus()
    assert campus.cells["c0"].sim is campus.sim
    assert campus.cells["c1"].sim is campus.sim


def test_duplicate_cell_and_ap_names_are_rejected():
    campus = Campus(seed=1)
    campus.add_cell("c0")
    with pytest.raises(ValueError, match="duplicate cell"):
        campus.add_cell("c0")
    with pytest.raises(ValueError, match="duplicate AP address"):
        campus.add_cell("c1", ap_address="ap@c0")


def test_connect_validates_and_is_idempotent():
    campus = Campus(seed=1)
    campus.add_cell("c0")
    campus.add_cell("c1")
    with pytest.raises(ValueError, match="unknown cell"):
        campus.connect("c0", "ghost")
    with pytest.raises(ValueError, match="neighbour itself"):
        campus.connect("c0", "c0")
    campus.connect("c0", "c1")
    campus.connect("c1", "c0")  # same pair, either order: no-op
    assert campus.adjacency == {("c0", "c1")}
    assert campus.coupled_pairs() == [("c0", "c1")]


def test_adjacency_on_different_channels_stays_inert():
    campus = _two_cell_campus(channels=(1, 6))
    assert campus.adjacency == {("c0", "c1")}
    assert campus.coupled_pairs() == []


# ----------------------------------------------------------------------
# co-channel interference
# ----------------------------------------------------------------------
def _saturate(campus: Campus, cell_name: str, station: str) -> None:
    cell = campus.cells[cell_name]
    campus.add_station(cell_name, station, rate_mbps=11.0)
    cell.udp_flow(
        cell.stations[station], direction="down", rate_mbps=8.0
    )


def test_co_channel_neighbour_hears_foreign_traffic():
    # All traffic lives in c0, yet c1's medium reads busy: the coupled
    # transmission costs carrier time in the idle neighbour.
    campus = _two_cell_campus(channels=(1, 1))
    _saturate(campus, "c0", "n1")
    campus.run(seconds=0.5)
    busy = campus.cell_busy_fractions()
    assert busy["c0"] > 0.1
    assert busy["c1"] == pytest.approx(busy["c0"], rel=0.05)


def test_cross_channel_neighbour_hears_nothing():
    campus = _two_cell_campus(channels=(1, 6))
    _saturate(campus, "c0", "n1")
    campus.run(seconds=0.5)
    busy = campus.cell_busy_fractions()
    assert busy["c0"] > 0.1
    assert busy["c1"] == 0.0


def test_co_channel_coupling_slows_both_cells_down():
    # Two saturated downlink cells: on the same RF channel they split
    # the air (carrier sense defers across the cell boundary), on
    # different channels each keeps its full standalone goodput.
    def total(channels):
        campus = _two_cell_campus(channels=channels, seed=3)
        _saturate(campus, "c0", "a1")
        _saturate(campus, "c1", "b1")
        campus.run(seconds=0.5)
        return sum(campus.station_throughputs_mbps().values())

    coupled = total((1, 1))
    separate = total((1, 6))
    assert coupled < 0.75 * separate


def test_coupling_requires_the_same_kernel():
    campus_a = Campus(seed=1)
    campus_b = Campus(seed=1)
    a = campus_a.add_cell("c0")
    b = campus_b.add_cell("c0")
    with pytest.raises(ValueError, match="share one simulator"):
        a.channel.couple(b.channel)
    with pytest.raises(ValueError, match="itself"):
        a.channel.couple(a.channel)


# ----------------------------------------------------------------------
# membership
# ----------------------------------------------------------------------
def test_station_names_are_campus_unique():
    campus = _two_cell_campus()
    campus.add_station("c0", "n1", rate_mbps=11.0)
    with pytest.raises(ValueError, match="already a member"):
        campus.add_station("c1", "n1", rate_mbps=11.0)
    assert campus.cell_of("n1") is campus.cells["c0"]


def test_remove_station_clears_membership():
    campus = _two_cell_campus()
    campus.add_station("c0", "n1", rate_mbps=11.0)
    campus.remove_station("n1")
    assert "n1" not in campus.membership
    assert "n1" not in campus.cells["c0"].stations
    campus.remove_station("n1")  # double remove: no-op
    campus.add_station("c1", "n1", rate_mbps=11.0)  # free to re-home
    assert campus.cell_of("n1") is campus.cells["c1"]


def test_roamer_occupancy_sums_across_visited_cells():
    campus = _two_cell_campus(scheduler="tbr")
    _saturate(campus, "c0", "walker")
    campus.sim.schedule(
        200_000.0,
        lambda: (
            campus.remove_station("walker"),
            _saturate(campus, "c1", "walker"),
        ),
    )
    campus.run(seconds=0.5)
    per_cell = campus.cell_occupancy_fractions()
    merged = campus.occupancy_fractions()
    assert per_cell["c0"]["walker"] > 0.0
    assert per_cell["c1"]["walker"] > 0.0
    assert merged["walker"] == pytest.approx(
        per_cell["c0"]["walker"] + per_cell["c1"]["walker"]
    )


# ----------------------------------------------------------------------
# campus sanitizer
# ----------------------------------------------------------------------
def test_sanitizer_catches_double_membership():
    campus = _two_cell_campus()
    campus.add_station("c0", "n1", rate_mbps=11.0)
    sanitizer = CampusSanitizer(campus)
    sanitizer._check_campus(0.0)  # healthy
    # Corrupt: the station object appears in a second cell's table.
    campus.cells["c1"].stations["n1"] = campus.cells["c0"].stations["n1"]
    with pytest.raises(InvariantViolation, match="two cells|not"):
        sanitizer._check_campus(0.0)


def test_sanitizer_catches_membership_map_drift():
    campus = _two_cell_campus()
    campus.add_station("c0", "n1", rate_mbps=11.0)
    sanitizer = CampusSanitizer(campus)
    campus.membership["n1"] = "c1"  # map says c1, cell table says c0
    with pytest.raises(InvariantViolation, match="membership map"):
        sanitizer._check_campus(0.0)


def test_sanitizer_catches_ghost_membership():
    campus = _two_cell_campus()
    campus.add_station("c0", "n1", rate_mbps=11.0)
    sanitizer = CampusSanitizer(campus)
    del campus.cells["c0"].stations["n1"]  # no cell holds it any more
    with pytest.raises(InvariantViolation, match="no cell"):
        sanitizer._check_campus(0.0)


# ----------------------------------------------------------------------
# spec validation
# ----------------------------------------------------------------------
def _campus_spec(timeline=(), **kwargs) -> ScenarioSpec:
    cells = kwargs.pop(
        "cells",
        (
            CellSpec(
                name="c0",
                stations=(StationSpec("a", rate_mbps=11.0),),
                flows=(FlowSpec(station="a", kind="tcp", direction="up"),),
            ),
            CellSpec(
                name="c1",
                stations=(StationSpec("b", rate_mbps=11.0),),
                flows=(FlowSpec(station="b", kind="tcp", direction="up"),),
            ),
        ),
    )
    adjacency = kwargs.pop("adjacency", (("c0", "c1"),))
    return ScenarioSpec(
        name="t",
        scheduler="tbr",
        stations=(),
        flows=(),
        timeline=tuple(timeline),
        seconds=2.0,
        seed=1,
        campus=CampusSpec(cells=cells, adjacency=adjacency),
        **kwargs,
    )


def test_campus_spec_accepts_a_roam_round_trip():
    _campus_spec(
        timeline=(
            RoamEvent(at_s=0.5, station="a", from_cell="c0", to_cell="c1"),
            RoamEvent(at_s=1.0, station="a", from_cell="c1", to_cell="c0"),
        )
    ).validate()


def test_campus_spec_rejects_duplicate_station_across_cells():
    with pytest.raises(ValueError, match="more than one cell"):
        _campus_spec(
            cells=(
                CellSpec(
                    name="c0", stations=(StationSpec("a", rate_mbps=11.0),)
                ),
                CellSpec(
                    name="c1", stations=(StationSpec("a", rate_mbps=11.0),)
                ),
            )
        ).validate()


def test_campus_spec_rejects_roam_from_the_wrong_cell():
    with pytest.raises(ValueError, match="is in"):
        _campus_spec(
            timeline=(
                RoamEvent(
                    at_s=0.5, station="a", from_cell="c1", to_cell="c0"
                ),
            )
        ).validate()


def test_campus_spec_rejects_events_during_a_handoff():
    # The station is in the air between disassociate and association:
    # nothing may target it inside the roam window.
    with pytest.raises(ValueError, match="mid-roam|in flight"):
        _campus_spec(
            timeline=(
                RoamEvent(
                    at_s=0.5, station="a", from_cell="c0", to_cell="c1",
                    delay_s=0.2,
                ),
                LeaveEvent(at_s=0.6, station="a"),
            )
        ).validate()


def test_campus_spec_rejects_top_level_stations():
    with pytest.raises(ValueError, match="top-level"):
        ScenarioSpec(
            name="t",
            scheduler="tbr",
            stations=(StationSpec("x", rate_mbps=11.0),),
            flows=(),
            seconds=1.0,
            seed=1,
            campus=CampusSpec(cells=(CellSpec(name="c0"),)),
        ).validate()


def test_campus_spec_rejects_unknown_adjacency_and_self_pairs():
    with pytest.raises(ValueError, match="unknown cell"):
        _campus_spec(adjacency=(("c0", "ghost"),)).validate()
    with pytest.raises(ValueError, match="itself"):
        _campus_spec(adjacency=(("c0", "c0"),)).validate()


def test_campus_spec_digest_covers_the_campus_section():
    plain = _campus_spec()
    roamy = _campus_spec(
        timeline=(
            RoamEvent(at_s=0.5, station="a", from_cell="c0", to_cell="c1"),
        )
    )
    rechanneled = _campus_spec(
        cells=(
            CellSpec(
                name="c0",
                channel=6,
                stations=(StationSpec("a", rate_mbps=11.0),),
                flows=(FlowSpec(station="a", kind="tcp", direction="up"),),
            ),
            CellSpec(
                name="c1",
                stations=(StationSpec("b", rate_mbps=11.0),),
                flows=(FlowSpec(station="b", kind="tcp", direction="up"),),
            ),
        )
    )
    assert plain.digest != roamy.digest
    assert plain.digest != rechanneled.digest
