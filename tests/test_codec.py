"""Frozen-tree JSON codec: the digest-preserving wire format.

The codec's one job is faithfulness: a spec that crosses the HTTP
boundary must come back with the same content digest, or the serve
front-end would re-simulate work the store already holds.
"""

import json

import pytest

from repro.campaign.job import freeze, make_job, thaw
from repro.scenario.codec import (
    CodecError,
    decode_tree,
    encode_tree,
    spec_from_json,
    spec_to_json,
)
from repro.scenario.registry import FAMILIES, build_spec


def round_trip(tree):
    return decode_tree(json.loads(json.dumps(encode_tree(tree))))


# ----------------------------------------------------------------------
# tree faithfulness
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "value",
    [
        None,
        True,
        0,
        -7,
        3.5,
        1.0,  # float stays float (digest depends on it)
        "text",
        b"\x00\xffraw",
        [1, 2, [3, 4]],
        {"b": 1, "a": {"nested": [1.5, None]}},
        {1, 2, 3},
        ("mixed", b"bytes", 2.5),
    ],
)
def test_round_trip_equals_frozen_form(value):
    tree = freeze(value)
    assert round_trip(tree) == tree


def test_int_float_distinction_survives():
    # 1 == 1.0 in Python, so compare reprs — the digest hashes repr().
    assert repr(round_trip(freeze({"x": 1}))) == repr(freeze({"x": 1}))
    assert repr(round_trip(freeze({"x": 1.0}))) == repr(freeze({"x": 1.0}))
    assert repr(round_trip(freeze({"x": 1}))) != repr(
        round_trip(freeze({"x": 1.0}))
    )


def test_job_digest_survives_round_trip():
    job = make_job(
        "exp", "key", "repro.campaign.faults:echo",
        {"value": 3, "nested": {"a": [1, 2]}, "flag": True},
    )
    tree = round_trip(job.params)
    clone = make_job("exp", "key", job.executor, {})
    # Rebuild through the Job constructor with the decoded params.
    from repro.campaign.job import Job

    rebuilt = Job(
        experiment="exp", key="key", executor=job.executor, params=tree
    )
    assert rebuilt.digest == job.digest


# ----------------------------------------------------------------------
# ScenarioSpec wrappers
# ----------------------------------------------------------------------
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_every_family_round_trips_with_equal_digest(family):
    spec = build_spec(family)
    wire = json.dumps(spec_to_json(spec))
    clone = spec_from_json(json.loads(wire))
    assert clone == spec
    assert clone.digest == spec.digest
    # And the campaign-job digest (the store address) matches too.
    from repro.scenario.runner import scenario_job

    assert (
        scenario_job(clone, key=clone.name).digest
        == scenario_job(spec, key=spec.name).digest
    )


def test_hand_reordered_json_still_canonicalizes():
    """A client need not reproduce freeze()'s canonical ordering —
    thawing through the real dataclasses re-canonicalizes."""
    spec = build_spec("churn", seconds=1.0)
    encoded = spec_to_json(spec)
    (tag, body), = encoded.items()
    assert tag == "@dataclass"
    cls_path, fields = body
    reordered = {tag: [cls_path, list(reversed(fields))]}
    clone = spec_from_json(reordered)
    assert clone.digest == spec.digest


# ----------------------------------------------------------------------
# refusal paths
# ----------------------------------------------------------------------
def test_decode_refuses_untrusted_dataclass_path():
    with pytest.raises(CodecError, match="refusing dataclass path"):
        decode_tree({"@dataclass": ["os.path:join", []]})


def test_thaw_refuses_in_package_non_dataclass():
    # A forged node can pass the 'repro.' prefix gate while naming a
    # plain function or class; thaw must refuse to call it rather than
    # invoke it with attacker-chosen kwargs.
    with pytest.raises(ValueError, match="not a dataclass"):
        thaw(("@dataclass", "repro.campaign.job:freeze", (("value", 1),)))
    with pytest.raises(ValueError, match="not a dataclass"):
        thaw(("@dataclass", "repro.scenario.codec:CodecError", ()))


def test_spec_from_json_refuses_in_package_non_dataclass():
    hostile = {"@dataclass": ["repro.campaign.job:freeze", [["value", 1]]]}
    with pytest.raises(CodecError, match="not a dataclass"):
        spec_from_json(hostile)
    # Nested nodes are instantiated before the outer ScenarioSpec type
    # check, so the gate must hold there too.
    spec = build_spec("churn")
    encoded = spec_to_json(spec)
    (tag, body), = encoded.items()
    cls_path, fields = body
    nested = [[fields[0][0], hostile]] + [list(f) for f in fields[1:]]
    with pytest.raises(CodecError, match="not a dataclass"):
        spec_from_json({tag: [cls_path, nested]})


def test_decode_rejects_malformed_nodes():
    with pytest.raises(CodecError):
        decode_tree({"@tuple": [1], "@set": [2]})  # two keys
    with pytest.raises(CodecError):
        decode_tree({"@nonsense": []})
    with pytest.raises(CodecError):
        decode_tree({"@bytes": "not-base64!!"})
    with pytest.raises(CodecError):
        decode_tree(object())


def test_encode_rejects_non_frozen_values():
    with pytest.raises(CodecError):
        encode_tree({"raw": "dict"})  # freeze() it first
    with pytest.raises(CodecError):
        encode_tree(("@unknown-tag", ()))


def test_spec_from_json_rejects_non_spec():
    with pytest.raises(CodecError, match="not a.*ScenarioSpec"):
        spec_from_json(encode_tree(freeze({"just": "a dict"})))


def test_spec_from_json_validates():
    spec = build_spec("churn")
    encoded = spec_to_json(spec)
    text = json.dumps(encoded).replace('["seconds", 10.0]', '["seconds", -1.0]')
    assert text != json.dumps(encoded)  # the knob was found and flipped
    with pytest.raises(CodecError):
        spec_from_json(json.loads(text))
