"""The demand-driven traffic engine: exactness, edge cases, pooling.

The engine's contract is that fusing the per-packet (source timer,
wire delivery) event pair into one self-rescheduling delivery changes
*nothing observable*: RNG draw order, every delivery timestamp (bit for
bit, including serialization contention on the shared downlink wire),
drop accounting and sink-side statistics all match the two-event path.
The parity tests here rebuild the pre-engine arrangement by hand —
``UdpSender`` + per-packet ``Packet`` + ``WiredHost.send`` — and demand
exact equality against ``Cell.udp_flow``'s fused path.
"""

import random

import pytest

from repro.node.cell import Cell
from repro.node.wired_host import WiredHost
from repro.queueing.fifo import ApFifoScheduler
from repro.queueing.round_robin import RoundRobinScheduler
from repro.sim import Simulator
from repro.transport.packet import Packet, PacketPool
from repro.transport.stats import FlowStats
from repro.transport.udp import UdpDownlinkSource, UdpSender, UdpSink
from repro.transport.wired import WiredLink


# ----------------------------------------------------------------------
# legacy replica: the pre-engine two-event downlink path
# ----------------------------------------------------------------------
def legacy_udp_down(cell, station, rate_mbps, payload_bytes=1472):
    """Wire a downlink UDP flow exactly as Cell.udp_flow used to:
    timer-driven sender, fresh Packet per fire, host.send per packet.
    Uses the same flow/RNG stream names as the fused path."""
    name = f"{station.address}/udp-down"
    host = WiredHost(f"host-{name}", cell.ap)
    stats = FlowStats(cell.sim, name)
    sink = UdpSink(stats)
    sta_addr = station.address
    sim = cell.sim

    def on_rx(p):
        sink.on_datagram(p.payload, p.size_bytes)

    def tx(size_bytes, datagram):
        pkt = Packet(
            size_bytes,
            sta_addr,
            to_station=True,
            payload=datagram,
            on_receive=on_rx,
            created_us=sim.now,
        )
        host.send(pkt)

    sender = UdpSender(sim, f"{name}-snd", tx, rate_mbps, payload_bytes)
    return sender, sink, stats


def build_cells(scheduler="tbr", stations=3, rate_mbps=4.0, seed=7):
    """Two identical cells; one will carry fused flows, one legacy."""
    cells = []
    for _ in range(2):
        cell = Cell(seed=seed, scheduler=scheduler)
        for i in range(stations):
            cell.add_station(f"n{i + 1}", rate_mbps=[1.0, 5.5, 11.0][i % 3])
        cells.append(cell)
    return cells


@pytest.mark.parametrize("scheduler", ["fifo", "tbr"])
def test_fused_matches_legacy_two_event_path_exactly(scheduler):
    """Saturating downlink UDP: every delivery timestamp and every drop
    must match the two-event path bit for bit — including serialization
    contention between the three flows on the shared 100 Mbps wire."""
    fused_cell, legacy_cell = build_cells(scheduler=scheduler)

    fused_flows = [
        fused_cell.udp_flow(s, direction="down", rate_mbps=4.0)
        for s in fused_cell.stations.values()
    ]
    legacy_flows = [
        legacy_udp_down(legacy_cell, s, rate_mbps=4.0)
        for s in legacy_cell.stations.values()
    ]

    fused_cell.run(seconds=2.0)
    legacy_cell.run(seconds=2.0)

    for flow, (sender, sink, stats) in zip(fused_flows, legacy_flows):
        # Delivery timestamps enter the delay samples; exact equality
        # means both the fire times and the wire transit matched.
        assert flow.stats.delays_us == stats.delays_us
        assert flow.stats.bytes_delivered == stats.bytes_delivered
        assert flow.receiver.received == sink.received
        assert flow.receiver.reordered == sink.reordered == 0
        # The pump's speculative fold may run one packet ahead.
        assert abs(flow.sender.sent - sender.sent) <= 1
    assert fused_cell.scheduler.dropped() == legacy_cell.scheduler.dropped()
    assert (
        fused_cell.ap.downlink_packets == legacy_cell.ap.downlink_packets
    )
    assert fused_cell.occupancy_fractions() == legacy_cell.occupancy_fractions()
    # The whole point: strictly fewer kernel events for the same run.
    assert fused_cell.sim.events_executed < legacy_cell.sim.events_executed


def test_fused_matches_legacy_with_competing_tcp_on_same_wire():
    """A TCP flow shares the downlink wire with fused UDP flows: its
    plain sends interleave with the pump's speculative folds, forcing
    unwinds.  Results must still match the two-event path exactly."""
    fused_cell, legacy_cell = build_cells(scheduler="fifo", stations=3)

    f_tcp = fused_cell.tcp_flow(fused_cell.stations["n1"], direction="down")
    l_tcp = legacy_cell.tcp_flow(legacy_cell.stations["n1"], direction="down")
    fused_flows = [
        fused_cell.udp_flow(fused_cell.stations[n], direction="down", rate_mbps=3.0)
        for n in ("n2", "n3")
    ]
    legacy_flows = [
        legacy_udp_down(legacy_cell, legacy_cell.stations[n], rate_mbps=3.0)
        for n in ("n2", "n3")
    ]

    fused_cell.run(seconds=2.0)
    legacy_cell.run(seconds=2.0)

    assert f_tcp.stats.delays_us == l_tcp.stats.delays_us
    assert f_tcp.stats.bytes_delivered == l_tcp.stats.bytes_delivered
    for flow, (sender, sink, stats) in zip(fused_flows, legacy_flows):
        assert flow.stats.delays_us == stats.delays_us
        assert flow.receiver.received == sink.received
    assert fused_cell.scheduler.dropped() == legacy_cell.scheduler.dropped()


def test_jitter_zero_is_deterministic_and_matches_legacy():
    """jitter_fraction=0: pure CBR (only the initial phase is drawn).
    Two fused runs must be identical, and fused must match legacy."""
    outcomes = []
    for engine in ("fused", "fused", "legacy"):
        cell = Cell(seed=3, scheduler="rr")
        station = cell.add_station("n1", rate_mbps=11.0)
        if engine == "fused":
            host = WiredHost("host-j0", cell.ap)
            stats = FlowStats(cell.sim, "j0")
            sink = UdpSink(stats)
            source = host.udp_stream(
                "n1",
                12.0,
                on_receive=lambda p: sink.on_datagram(p.payload, p.size_bytes),
                jitter_fraction=0.0,
                name="n1/udp-down-snd",
            )
            sender = source
        else:
            sender, sink, stats = legacy_udp_down(
                cell, station, rate_mbps=12.0
            )
            sender.jitter_fraction = 0.0
        cell.run(seconds=1.0)
        outcomes.append((tuple(stats.delays_us), sink.received))
    assert outcomes[0] == outcomes[1]
    # Legacy used the same stream name but drew through a sender created
    # with jitter; align by name: the initial phase draw is the only
    # draw either engine makes at jitter 0, so results must match.
    assert outcomes[0] == outcomes[2]


def test_stop_us_landing_exactly_on_a_fire_time():
    """A fire scheduled exactly at stop_us must not send (legacy checks
    ``now >= stop_us``), in both engines."""
    # Replay the stream to find the first fire time.
    interval = (100 + UdpSender.HEADER_BYTES) * 8.0 / 1.0
    rng = random.Random("5/udp/edge")
    first_fire = rng.uniform(0.0, interval)

    # Legacy: timer fires at stop_us, sends nothing, stops.
    sim = Simulator(seed=5)
    sent_sizes = []
    sender = UdpSender(
        sim, "edge", lambda n, d: sent_sizes.append(n), 1.0, 100,
        stop_us=first_fire,
    )
    sim.run(until=10 * interval)
    assert sender.sent == 0 and sent_sizes == []

    # Fused: the arrival is disowned before it ever folds.
    cell = Cell(seed=5)
    cell.add_station("n1")
    host = WiredHost("h", cell.ap)
    source = host.udp_stream(
        "n1", 1.0, 100, stop_us=first_fire, name="edge"
    )
    assert source.peek_fire_us() is None
    cell.sim.run(until=10 * interval)
    assert source.sent == 0
    assert cell.ap.downlink_packets == 0


def test_dynamic_stop_unwinds_speculative_fold():
    """stop() mid-run cancels arrivals with fire >= now even if the pump
    already folded one speculatively; sent/seq counters roll back."""
    cell = Cell(seed=11)
    cell.add_station("n1")
    host = WiredHost("h", cell.ap)
    delivered = []
    source = host.udp_stream(
        "n1", 2.0,
        on_receive=lambda p: delivered.append(p.payload.seq),
        name="stopper",
    )
    link = cell.ap.downlink_wire
    # Run long enough for a few deliveries, then stop between fires.
    cell.sim.run(until=source.interval_us * 4.1)
    assert link.pump_pending() >= 1  # a speculative fold is outstanding
    sent_before = source.sent
    source.stop()
    assert source.sent == sent_before - 1  # speculative arrival undone
    assert source.peek_fire_us() is None
    pending_deliveries = cell.sim.pending_count()
    cell.sim.run(until=cell.sim.now + 10 * source.interval_us)
    # No new arrivals after the stop: only in-flight work drained.
    assert source.sent == sent_before - 1
    del pending_deliveries


def test_zero_rate_link_fifo_ordering_across_sources_and_sends():
    """rate=0 (pure delay): deliveries come out in fire order, demand
    arrivals and plain sends interleaved, ties broken by registration
    order."""
    sim = Simulator(seed=0)
    link = WiredLink(sim, delay_us=500.0, rate_mbps=0.0)
    order = []

    class Scripted:
        """Minimal DemandSource with a fixed fire schedule."""

        packet_bytes = 1000

        def __init__(self, label, fires):
            self.label = label
            self.fires = list(fires)
            self.pos = 0
            self.delivered_seqs = []

        def peek_fire_us(self):
            return self.fires[self.pos] if self.pos < len(self.fires) else None

        def advance(self):
            self.pos += 1
            return self.pos

        def rewind(self, seq, fire_us):
            self.pos -= 1

        def deliver(self, seq, fire_us):
            order.append((self.label, fire_us))

    a = Scripted("a", [100.0, 300.0, 300.0 + 200.0])
    b = Scripted("b", [100.0, 250.0])
    link.attach_source(a)
    link.attach_source(b)

    class Pkt:
        size_bytes = 400

    sim.schedule(200.0, lambda: link.send(Pkt(), lambda p: order.append(("p", 200.0))))
    sim.run(until=2000.0)
    # Fire order: a@100, b@100 (tie -> registration order), p@200,
    # b@250, a@300, a@500; pure delay preserves it at +500us each.
    assert order == [
        ("a", 100.0), ("b", 100.0), ("p", 200.0),
        ("b", 250.0), ("a", 300.0), ("a", 500.0),
    ]
    assert link.delivered == 6


def test_plain_send_unwind_restores_serialization_state():
    """A plain send arriving before a speculatively-folded arrival must
    serialize first — byte-identical to the two-event ordering."""
    sim = Simulator(seed=0)
    # 1000 B at 8 Mbps = 1000 us serialization; generous delay.
    link = WiredLink(sim, delay_us=100.0, rate_mbps=8.0)
    deliveries = []

    class One:
        packet_bytes = 1000

        def peek_fire_us(self):
            return 500.0 if not getattr(self, "done", False) else None

        def advance(self):
            self.done = True
            return 1

        def rewind(self, seq, fire_us):
            self.done = False

        def deliver(self, seq, fire_us):
            deliveries.append(("demand", sim.now))

    link.attach_source(One())
    # Speculative fold happened at attach: busy_until covers [500, 1500].
    assert link.pump_pending() == 1

    class Pkt:
        size_bytes = 1000

    # Plain send at t=200 < 500: must grab the pipe first.
    sim.schedule(
        200.0, lambda: link.send(Pkt(), lambda p: deliveries.append(("plain", sim.now)))
    )
    sim.run(until=10_000.0)
    # Two-event ordering: plain serializes 200->1200 (+100 delay =>
    # 1300); demand arrival then serializes 1200->2200 (+100 => 2300).
    assert deliveries == [("plain", 1300.0), ("demand", 2300.0)]


def test_busy_until_stale_backlog_without_reset_regression():
    """Reusing a link for a new epoch without reset() leaves ghost
    serialization backlog that delays the new epoch's first packet;
    reset() clears it.  (The audited `_busy_until` reuse bug.)"""
    times = []

    def run_epoch2(reset):
        sim = Simulator(seed=0)
        link = WiredLink(sim, delay_us=0.0, rate_mbps=8.0)

        class Pkt:
            size_bytes = 1000  # 1000 us serialization each

        got = []
        # Epoch 1: burst of 5 packets at t=0 books the pipe until 5000.
        for _ in range(5):
            link.send(Pkt(), lambda p: None)
        sim.run(until=1000.0)  # epoch ends mid-backlog
        if reset:
            link.reset()
            assert link.delivered == 0
        link.send(Pkt(), lambda p: got.append(sim.now))
        sim.run(until=20_000.0)
        return got[0]

    times.append(run_epoch2(reset=False))
    times.append(run_epoch2(reset=True))
    assert times[0] == 6000.0  # ghost backlog from epoch 1
    assert times[1] == 2000.0  # fresh pipe: 1000 (now) + 1000 serialize


@pytest.mark.parametrize("rate_mbps", [8.0, 0.0], ids=["serialized", "pure-delay"])
def test_reset_mid_sim_with_backlogged_demand_source(rate_mbps):
    """reset() while an attached source has an overdue arrival (its
    fire time already passed, backlog built in the old epoch) must
    rebase that arrival onto the fresh pipe, not schedule its delivery
    in the past."""
    sim = Simulator(seed=0)
    link = WiredLink(sim, delay_us=0.0, rate_mbps=rate_mbps)
    delivered = []

    class Fast:
        # Fires every 200 us; at 8 Mbps each 1000 B packet serializes
        # for 1000 us, so the fold frontier falls behind the clock.
        packet_bytes = 1000

        def __init__(self):
            self.pos = 0

        def peek_fire_us(self):
            return self.pos * 200.0 + 100.0

        def advance(self):
            self.pos += 1
            return self.pos

        def rewind(self, seq, fire_us):
            self.pos -= 1

        def deliver(self, seq, fire_us):
            delivered.append(sim.now)

    link.attach_source(Fast())
    sim.run(until=2150.0)
    link.reset()  # new epoch mid-backlog
    assert link.delivered == 0
    before = sim.now
    sim.run(until=before + 5000.0)
    assert delivered  # the pump kept running
    assert all(t >= before for t in delivered[-3:] or delivered)


def test_udp_sender_stop_during_tx_callback_regression():
    """stop() called from inside the tx callback (a sink reacting to
    the datagram) must not leave a ghost timer re-armed by _fire."""
    sim = Simulator(seed=1)
    box = {}

    def tx(size, datagram):
        box["sender"].stop()

    box["sender"] = UdpSender(sim, "s", tx, 1.0, 100)
    sim.run(until=10_000_000.0)
    assert box["sender"].sent == 1
    assert box["sender"]._timer is None
    # One initial timer event only — no ghost firing after stop().
    assert sim.events_executed == 1


# ----------------------------------------------------------------------
# drop-before-alloc and the packet freelist
# ----------------------------------------------------------------------
def test_saturated_cell_drops_cost_no_allocations():
    """In a saturated cell, tail-dropped arrivals never materialize:
    pool allocations stay bounded by in-flight packets, far below the
    offered count."""
    cell = Cell(seed=2, scheduler="tbr")
    station = cell.add_station("n1", rate_mbps=1.0)
    flow = cell.udp_flow(station, direction="down", rate_mbps=8.0)
    cell.run(seconds=2.0)
    pool = cell.ap.packet_pool
    offered = flow.sender.sent
    dropped = cell.scheduler.dropped()
    assert dropped > offered / 2  # genuinely saturated
    admitted = offered - dropped
    # Every admitted packet came from the pool machinery...
    assert pool.allocated + pool.reused >= admitted - 1
    # ...but the allocator was only touched for the small working set.
    assert pool.allocated < admitted / 2
    assert pool.reused > 0 and pool.recycled > 0
    # Disassociation flushes the queued backlog back to the pool: after
    # it, every packet ever handed out has been returned — no leak —
    # except the one frame the AP MAC may still hold mid-exchange.
    backlog = cell.scheduler.backlog("n1")
    assert backlog > 0
    cell.remove_station("n1")
    in_flight = 1 if cell.ap.mac.busy_with_frame else 0
    assert pool.recycled == pool.allocated + pool.reused - in_flight


def test_pool_reuse_does_not_leak_payload_state_across_flows():
    """A packet recycled from flow A and reused by flow B must carry
    B's payload, size, station and callback — nothing of A's."""
    cell = Cell(seed=4, scheduler="rr")
    sta_a = cell.add_station("a", rate_mbps=11.0, queue_capacity=2)
    sta_b = cell.add_station("b", rate_mbps=11.0, queue_capacity=2)
    got = {"a": [], "b": []}
    host = WiredHost("h", cell.ap)
    host.udp_stream(
        "a", 6.0, 700,
        on_receive=lambda p: got["a"].append(
            (p.station, p.size_bytes, p.payload.seq)
        ),
        name="flow-a",
    )
    host.udp_stream(
        "b", 6.0, 1400,
        on_receive=lambda p: got["b"].append(
            (p.station, p.size_bytes, p.payload.seq)
        ),
        name="flow-b",
    )
    cell.run(seconds=1.0)
    pool = cell.ap.packet_pool
    assert pool.reused > 0  # recycling actually happened
    for label, size in (("a", 700), ("b", 1400)):
        seqs = [seq for _, _, seq in got[label]]
        assert all(sta == label for sta, _, _ in got[label])
        assert all(sz == size + 28 for _, sz, _ in got[label])
        assert seqs == sorted(seqs)  # per-flow seqs monotone: no mixing
        assert len(set(seqs)) == len(seqs)


def test_packet_pool_double_release_is_safe():
    pool = PacketPool(max_size=4)
    packet = Packet(100, "x", to_station=True)
    packet._pool = pool
    packet.release()
    packet.release()  # second release must be a no-op
    assert len(pool) == 1
    assert pool.recycled == 1
    again = pool.get()
    assert again is packet
    assert pool.get() is None  # not handed out twice


def test_pool_bounds_and_counters():
    pool = PacketPool(max_size=1)
    p1 = Packet(10, "s", to_station=True)
    p2 = Packet(10, "s", to_station=True)
    for p in (p1, p2):
        p._pool = pool
        p.release()
    assert pool.recycled == 2
    assert len(pool) == 1  # bounded


# ----------------------------------------------------------------------
# scheduler admission API
# ----------------------------------------------------------------------
def test_admits_and_drop_arrival_mirror_enqueue_counters():
    sched = RoundRobinScheduler(total_capacity=4)
    sched.associate("n1")
    sched.associate("n2")  # 2 packets per station
    assert sched.admits("n1")
    for _ in range(2):
        assert sched.enqueue(Packet(100, "n1", to_station=True))
    assert not sched.admits("n1")
    sched.drop_arrival("n1")
    assert sched.queues["n1"].dropped == 1
    # Parity with push-path drops:
    assert not sched.enqueue(Packet(100, "n1", to_station=True))
    assert sched.queues["n1"].dropped == 2
    assert sched.admits("n2")
    # Unknown stations are associated, as enqueue would.
    assert sched.admits("n3")
    assert "n3" in sched.queues


def test_fifo_scheduler_admits_shared_capacity():
    sched = ApFifoScheduler(total_capacity=2)
    assert sched.admits("n1")
    sched.enqueue(Packet(10, "n1", to_station=True))
    sched.enqueue(Packet(10, "n2", to_station=True))
    assert not sched.admits("n1")
    sched.drop_arrival("n1")
    assert sched.dropped() == 1
