"""Determinism goldens: fig8/fig9 outputs must be byte-identical.

The golden files were rendered by the pre-optimization kernel (the
seed-state simulator, before the tuple-keyed heap, lazy-cancellation
compaction, event reuse, PHY memoization and filtered channel
notifications landed).  The hot-path work is required to be a pure
optimization: same RNG streams, same event ordering, same schedules —
so these short runs must reproduce the stored text exactly, byte for
byte, on every future change to the hot path as well.
"""

import pathlib

import pytest

from repro.experiments import fig8, fig9

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


@pytest.mark.parametrize(
    "module, golden",
    [(fig8, "fig8_seed1_1s.txt"), (fig9, "fig9_seed1_1s.txt")],
    ids=["fig8", "fig9"],
)
def test_experiment_output_matches_pre_optimization_golden(module, golden):
    rendered = module.render(module.run(seed=1, seconds=1.0)) + "\n"
    expected = (GOLDEN_DIR / golden).read_text()
    assert rendered == expected
