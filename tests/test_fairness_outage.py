"""The fairness-outage experiment: golden render + re-convergence bound.

Pins the per-phase occupancy-share tables byte for byte and asserts
the substantive claims: after the AP blacks out and every station
re-associates through the jittered rejoin stampede, TBR's shares
return to 1/n_active within a bounded number of FILLEVENTs, while the
FIFO baseline re-converges straight back to the anomaly (the slow
station owning the channel).  The blackout itself must actually
silence the cell.
"""

import pathlib

import pytest

from repro.experiments import fairness_outage
from repro.scenario.registry import fairness_outage_phases
from repro.sim import us_from_s

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: FILLEVENT budget for post-recovery re-convergence: four probe
#: windows of 25 FILLEVENTs each (1 s at the default 10 ms fill
#: interval); the golden run converges in the first window (25).
CONVERGE_BUDGET_FILLS = 100


@pytest.fixture(scope="module")
def result():
    return fairness_outage.run(seed=1, seconds=4.5)


def test_render_matches_golden(result):
    rendered = fairness_outage.render(result) + "\n"
    expected = (GOLDEN_DIR / "fairness_outage_seed1_4p5s.txt").read_text()
    assert rendered == expected


def test_tbr_reconverges_within_fill_budget(result):
    assert result.tbr.converge_fills is not None
    assert result.tbr.converge_fills <= CONVERGE_BUDGET_FILLS


def test_tbr_after_shares_return_to_fair(result):
    run = result.tbr
    fair = 1.0 / run.n_active
    for station, share in run.shares["after"].items():
        assert share == pytest.approx(fair, abs=0.12), (
            f"{station} share {share:.3f} after recovery strays from "
            f"fair share {fair:.3f}"
        )


def test_fifo_baseline_reconverges_to_the_anomaly(result):
    # FIFO re-associates just as well — but the slow station goes
    # right back to owning the channel, so the contrast survives.
    assert result.fifo.shares["after"]["slow"] > 0.5
    assert result.fifo.converge_fills is None


def test_blackout_actually_silences_the_cell(result):
    # The down phase's attributed airtime is bounded by the rejoin
    # jitter tail: while the AP is dark nothing can transmit, so the
    # phase cannot contain more airtime than the post-recovery stretch
    # it includes (plus the aborted exchange's residue).
    _, down, up, _ = fairness_outage_phases(4.5, 1.0)
    jitter_tail_us = us_from_s(up) - us_from_s(down + 1.0)
    for scheduler in fairness_outage.SCHEDULERS:
        down_airtime = result.runs[scheduler].down_airtime_us
        assert down_airtime < jitter_tail_us * 1.1, scheduler


def test_phase_helper_rejects_late_outages():
    with pytest.raises(ValueError, match="fairness-outage phases"):
        fairness_outage_phases(3.0, 1.0, outage_at_s=3.5, outage_s=1.0)
