"""Tests for the DCF MAC state machine."""

import pytest

from repro.channel import Channel, PerLinkLoss
from repro.mac import DcfMac, FifoTxScheduler, MacConfig
from repro.phy import DOT11B_LONG_PREAMBLE, ack_airtime_us, frame_airtime_us
from repro.sim import Simulator, us_from_s

from tests.conftest import MacHarness, SimplePacket

PHY = DOT11B_LONG_PREAMBLE


def test_single_sender_delivers_packet():
    h = MacHarness(1)
    h.scheds[0].enqueue(SimplePacket("ap", 1000))
    h.sim.run()
    assert h.rx_bytes.get("sta0") == 1000
    assert h.macs[0].tx_success == 1


def test_first_packet_uses_immediate_access():
    # Medium idle since t=0; a packet arriving at t >= DIFS transmits
    # immediately: reception completes exactly after the frame + SIFS +
    # ACK with no backoff slots.
    h = MacHarness(1)
    start = 1000.0
    done = []
    h.macs[0].add_completion_listener(lambda rep: done.append(h.sim.now))
    h.sim.run(until=start)
    h.scheds[0].enqueue(SimplePacket("ap", 1500))
    h.sim.run(until=start + 10_000.0)
    data = frame_airtime_us(PHY, 1500, 11.0)
    ack = ack_airtime_us(PHY, 2.0)
    expected_end = start + data + PHY.sifs_us + ack
    assert h.macs[0].tx_success == 1
    assert done == [pytest.approx(expected_end, abs=1e-6)]


def test_post_tx_backoff_spaces_consecutive_packets():
    # A lone saturated sender must wait DIFS + backoff between frames
    # (this is why a single 802.11 sender cannot saturate the channel).
    h = MacHarness(1)
    ends = []
    h.macs[0].add_completion_listener(lambda rep: ends.append(h.sim.now))
    h.saturate(0, depth=3)
    h.run_seconds(0.1)
    assert len(ends) >= 3
    data = frame_airtime_us(PHY, 1500, 11.0)
    ack = ack_airtime_us(PHY, 2.0)
    exchange = data + PHY.sifs_us + ack
    gaps = [b - a - exchange for a, b in zip(ends, ends[1:])]
    # Every gap >= DIFS; and on average clearly larger (backoff slots).
    assert all(gap >= PHY.difs_us - 1e-6 for gap in gaps)
    mean_gap = sum(gaps) / len(gaps)
    assert mean_gap > PHY.difs_us + 2 * PHY.slot_us


def test_two_saturated_senders_share_fairly():
    h = MacHarness(2, seed=3)
    h.saturate(0)
    h.saturate(1)
    h.run_seconds(3.0)
    thr0 = h.throughput_mbps("sta0", 3.0)
    thr1 = h.throughput_mbps("sta1", 3.0)
    assert thr0 + thr1 > 5.5  # near UDP saturation for 11 Mbps
    assert abs(thr0 - thr1) / (thr0 + thr1) < 0.1


def test_collisions_occur_and_are_retried():
    h = MacHarness(2, seed=3)
    h.saturate(0)
    h.saturate(1)
    h.run_seconds(2.0)
    total_attempts = h.macs[0].tx_attempts + h.macs[1].tx_attempts
    total_success = h.macs[0].tx_success + h.macs[1].tx_success
    assert total_attempts > total_success  # some collisions happened
    assert h.macs[0].tx_dropped == 0  # but retries recovered them all
    # Receiver saw no duplicate deliveries.
    seqs = [f.seq for f in h.rx_frames]
    assert len(seqs) == len(set(seqs))


def test_rate_diversity_equalizes_throughput_not_time():
    h = MacHarness(2, rates=[1.0, 11.0], seed=5)
    airtime = {}
    for i, mac in enumerate(h.macs):
        mac.add_completion_listener(
            lambda rep, i=i: airtime.__setitem__(
                i, airtime.get(i, 0.0) + rep.airtime_us
            )
        )
    h.saturate(0)
    h.saturate(1)
    h.run_seconds(3.0)
    thr0 = h.throughput_mbps("sta0", 3.0)
    thr1 = h.throughput_mbps("sta1", 3.0)
    # The anomaly: equal throughputs...
    assert abs(thr0 - thr1) / (thr0 + thr1) < 0.15
    # ...but wildly unequal channel time (paper: ~6.4x).
    assert airtime[0] / airtime[1] > 4.0


def test_retry_limit_drops_frame():
    sim = Simulator(seed=1)
    channel = Channel(sim, PerLinkLoss({("sta", "ap"): 1.0}))
    ap = DcfMac(sim, channel, "ap", PHY)
    ap.attach_scheduler(FifoTxScheduler())
    mac = DcfMac(sim, channel, "sta", PHY, config=MacConfig(max_attempts=4))
    sched = FifoTxScheduler()
    mac.attach_scheduler(sched)
    reports = []
    mac.add_completion_listener(reports.append)
    sched.enqueue(SimplePacket("ap"))
    sim.run(until=us_from_s(1.0))
    assert mac.tx_dropped == 1
    assert mac.tx_attempts == 4
    assert len(reports) == 1
    assert not reports[0].success
    assert reports[0].attempts == 4


def test_cw_doubles_on_retries():
    sim = Simulator(seed=2)
    channel = Channel(sim, PerLinkLoss({("sta", "ap"): 1.0}))
    ap = DcfMac(sim, channel, "ap", PHY)
    ap.attach_scheduler(FifoTxScheduler())
    mac = DcfMac(sim, channel, "sta", PHY, config=MacConfig(max_attempts=3))
    sched = FifoTxScheduler()
    mac.attach_scheduler(sched)
    observed_cw = []
    original = mac._start_backoff

    def spy(*, draw):
        observed_cw.append(mac._cw)
        original(draw=draw)

    mac._start_backoff = spy
    sched.enqueue(SimplePacket("ap"))
    sim.run(until=us_from_s(1.0))
    retry_cws = [cw for cw in observed_cw if cw > PHY.cw_min]
    assert retry_cws[:2] == [63, 127]


def test_exchange_airtime_includes_retries():
    sim = Simulator(seed=3)
    loss = PerLinkLoss({("sta", "ap"): 1.0})
    channel = Channel(sim, loss)
    ap = DcfMac(sim, channel, "ap", PHY)
    ap.attach_scheduler(FifoTxScheduler())
    mac = DcfMac(sim, channel, "sta", PHY, config=MacConfig(max_attempts=3))
    sched = FifoTxScheduler()
    mac.attach_scheduler(sched)
    reports = []
    mac.add_completion_listener(reports.append)
    sched.enqueue(SimplePacket("ap"))
    sim.run(until=us_from_s(1.0))
    data = frame_airtime_us(PHY, 1500, 11.0)
    # 3 attempts, each DIFS + data (no ACK ever arrives).
    assert reports[0].airtime_us == pytest.approx(3 * (PHY.difs_us + data))


def test_duplicate_detection_on_lost_ack():
    # If only the ACK path is broken... we model loss at the data frame,
    # so instead verify dedup directly: two frames with the same seq.
    h = MacHarness(1)
    h.scheds[0].enqueue(SimplePacket("ap", 500))
    h.sim.run()
    assert h.macs[0].tx_success == 1
    before = len(h.rx_frames)
    # Forge a retransmission of the same sequence number.
    from repro.mac.frames import Frame, FrameType

    dup = Frame(FrameType.DATA, "sta0", "ap", 500, 11.0,
                seq=h.rx_frames[0].seq)
    h.channel.transmit(dup, 100.0)
    h.sim.run()
    assert len(h.rx_frames) == before  # not delivered twice
    assert h.ap.rx_duplicates == 1


def test_scheduler_wakeup_after_none():
    """A scheduler may return None (TBR withholding); notify_pending
    must restart transmission later."""

    class GatedScheduler(FifoTxScheduler):
        def __init__(self):
            super().__init__()
            self.gate_open = False

        def dequeue(self):
            if not self.gate_open:
                return None
            return super().dequeue()

    sim = Simulator(seed=1)
    channel = Channel(sim)
    ap = DcfMac(sim, channel, "ap", PHY)
    ap.attach_scheduler(FifoTxScheduler())
    received = []
    ap.rx_handler = received.append
    mac = DcfMac(sim, channel, "sta", PHY)
    sched = GatedScheduler()
    mac.attach_scheduler(sched)
    sched.enqueue(SimplePacket("ap"))
    sim.run(until=us_from_s(0.5))
    assert received == []  # withheld

    def open_gate():
        sched.gate_open = True
        mac.notify_pending()

    sim.schedule(0.0, open_gate)
    sim.run(until=us_from_s(1.0))
    assert len(received) == 1


def test_completion_reports_rates_and_sizes():
    h = MacHarness(1, rates=[5.5])
    reports = []
    h.macs[0].add_completion_listener(reports.append)
    h.scheds[0].enqueue(SimplePacket("ap", 700))
    h.sim.run()
    rep = reports[0]
    assert rep.success
    assert rep.rate_mbps == 5.5
    assert rep.payload_bytes == 700
    assert rep.src == "sta0" and rep.dst == "ap"
    assert rep.attempts == 1


def test_attempt_listener_called_per_attempt():
    sim = Simulator(seed=4)
    channel = Channel(sim, PerLinkLoss({("sta", "ap"): 1.0}))
    ap = DcfMac(sim, channel, "ap", PHY)
    ap.attach_scheduler(FifoTxScheduler())
    mac = DcfMac(sim, channel, "sta", PHY, config=MacConfig(max_attempts=3))
    sched = FifoTxScheduler()
    mac.attach_scheduler(sched)
    attempts = []
    mac.attempt_listener = lambda dst, ok: attempts.append((dst, ok))
    sched.enqueue(SimplePacket("ap"))
    sim.run(until=us_from_s(1.0))
    assert attempts == [("ap", False)] * 3


def test_rate_provider_consulted_per_attempt():
    # The provider is queried at frame load and again per attempt; the
    # first *transmission* goes at 11 and the retry must pick up the
    # provider's new answer (1.0) without a new frame.
    rates_given = []

    def provider(dst):
        rates_given.append(dst)
        return 11.0 if len(rates_given) <= 2 else 1.0

    sim = Simulator(seed=5)
    channel = Channel(sim, PerLinkLoss({("sta", "ap"): 1.0}))
    ap = DcfMac(sim, channel, "ap", PHY)
    ap.attach_scheduler(FifoTxScheduler())
    mac = DcfMac(
        sim, channel, "sta", PHY,
        config=MacConfig(max_attempts=2), rate_provider=provider,
    )
    sniffed = []
    channel.add_sniffer(lambda f, d, c, s, e: sniffed.append(f.rate_mbps))
    sched = FifoTxScheduler()
    mac.attach_scheduler(sched)
    sched.enqueue(SimplePacket("ap"))
    sim.run(until=us_from_s(1.0))
    data_rates = [r for r in sniffed if r != 2.0]  # exclude ACKs
    assert data_rates == [11.0, 1.0]


def test_deterministic_given_seed():
    def run_once():
        h = MacHarness(2, seed=77)
        h.saturate(0)
        h.saturate(1)
        h.run_seconds(1.0)
        return dict(h.rx_bytes), h.macs[0].tx_attempts

    assert run_once() == run_once()


def test_eifs_after_observing_corrupted_frame():
    # A third station that observes a collision must defer EIFS, not
    # DIFS, before its next access.
    h = MacHarness(3, seed=9)
    h.saturate(0)
    h.saturate(1)
    h.saturate(2)
    h.run_seconds(1.0)
    # The run with collisions still makes progress and is loss-free at
    # the transport level (everything retried).
    assert all(m.tx_dropped == 0 for m in h.macs)
    total = sum(h.rx_bytes.values()) * 8.0 / 1e6
    assert total > 5.0


def test_mac_config_validation():
    with pytest.raises(ValueError):
        MacConfig(max_attempts=0)
