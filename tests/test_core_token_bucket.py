"""Tests for the TBR token bucket."""

import pytest
from hypothesis import given, strategies as st

from repro.core import TokenBucket


def bucket(rate=0.5, depth=100_000.0, initial=0.0):
    return TokenBucket("sta", rate=rate, depth_us=depth, initial_us=initial)


def test_initial_tokens_capped_at_depth():
    b = TokenBucket("s", rate=0.5, depth_us=100.0, initial_us=1000.0)
    assert b.tokens_us == 100.0


def test_fill_accrues_rate_times_elapsed():
    b = bucket(rate=0.25)
    b.fill(1000.0)
    assert b.tokens_us == 250.0
    assert b.filled_us == 250.0


def test_fill_caps_at_depth():
    b = bucket(rate=1.0, depth=500.0)
    b.fill(10_000.0)
    assert b.tokens_us == 500.0


def test_charge_can_overdraw():
    b = bucket(initial=100.0)
    b.charge(400.0)
    assert b.tokens_us == -300.0
    assert not b.eligible
    assert b.spent_us == 400.0


def test_eligible_requires_strictly_positive():
    b = bucket(initial=0.0)
    assert not b.eligible
    b.fill(1.0)
    assert b.eligible


def test_actual_rate_over_window():
    b = bucket()
    b.charge(250.0)
    assert b.actual_rate(now_us=1000.0) == pytest.approx(0.25)


def test_actual_rate_empty_window():
    assert bucket().actual_rate(0.0) == 0.0


def test_reset_window_zeroes_usage():
    b = bucket()
    b.charge(500.0)
    b.reset_window(now_us=1000.0)
    assert b.actual_rate(2000.0) == 0.0
    assert b.spent_us == 500.0  # lifetime total preserved


def test_validation():
    with pytest.raises(ValueError):
        TokenBucket("s", rate=0.5, depth_us=0.0)
    with pytest.raises(ValueError):
        TokenBucket("s", rate=-0.1, depth_us=10.0)
    b = bucket()
    with pytest.raises(ValueError):
        b.fill(-1.0)
    with pytest.raises(ValueError):
        b.charge(-1.0)


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["fill", "charge"]),
            st.floats(min_value=0.0, max_value=10_000.0),
        ),
        max_size=60,
    )
)
def test_bucket_invariants(ops):
    """Balance never exceeds depth, and conservation holds:
    tokens = initial + min(fills, caps applied) - charges,
    checked via the weaker but exact bound tokens <= initial+filled-spent."""
    b = TokenBucket("s", rate=0.5, depth_us=5_000.0, initial_us=1_000.0)
    for op, amount in ops:
        if op == "fill":
            b.fill(amount)
        else:
            b.charge(amount)
        assert b.tokens_us <= b.depth_us + 1e-9
        assert b.tokens_us <= 1_000.0 + b.filled_us - b.spent_us + 1e-6


@given(st.floats(min_value=0.0, max_value=1.0), st.floats(min_value=1.0, max_value=1e6))
def test_fill_never_negative_contribution(rate, elapsed):
    b = TokenBucket("s", rate=rate, depth_us=1e9)
    before = b.tokens_us
    b.fill(elapsed)
    assert b.tokens_us >= before
