"""Parallel/serial parity: campaign execution must be byte-identical.

The golden files under ``tests/golden/`` *are* the serial fig8/fig9
renders (pinned since the seed-state kernel), so comparing a campaign
run against them proves the multi-process executor changes nothing:
not the RNG streams, not the merge order, not a single formatted digit.
The full fig8+fig9 campaign at ``--jobs 4`` is marked ``slow`` (set
``REPRO_RUN_SLOW=1``); tier-1 runs the same machinery as a small-N
smoke (fig9 only, 2 workers) under a wall-clock budget, mirroring
``tests/test_perf_scaling.py``'s budget pattern.
"""

import pathlib
import time

import pytest

from repro.campaign import ResultCache, run_jobs
from repro.experiments import fig8, fig9

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: Wall-clock budget for the tier-1 smoke campaign.  Generous — the
#: run takes a few seconds even on one slow core — but catches the
#: executor hanging (a worker deadlock would otherwise block forever).
SMOKE_WALL_BUDGET_S = 120.0


def campaign_render(module, name, outcome):
    return module.render(module.reduce(outcome.experiment_results(name))) + "\n"


@pytest.mark.slow
def test_fig8_fig9_jobs4_byte_identical_to_serial_goldens(tmp_path):
    """One mixed campaign, 4 workers: renders must equal the goldens,
    and a warm-cache rerun must reproduce them without executing."""
    jobs = fig8.jobs(seed=1, seconds=1.0) + fig9.jobs(seed=1, seconds=1.0)
    cache = ResultCache(tmp_path / "cache")

    cold = run_jobs(jobs, workers=4, cache=cache)
    assert cold.stats.executed == cold.stats.unique
    assert campaign_render(fig8, "fig8", cold) == (
        GOLDEN_DIR / "fig8_seed1_1s.txt"
    ).read_text()
    assert campaign_render(fig9, "fig9", cold) == (
        GOLDEN_DIR / "fig9_seed1_1s.txt"
    ).read_text()

    warm = run_jobs(jobs, workers=4, cache=cache)
    assert warm.stats.executed == 0
    assert warm.stats.cached == warm.stats.unique
    assert campaign_render(fig8, "fig8", warm) == campaign_render(
        fig8, "fig8", cold
    )
    assert campaign_render(fig9, "fig9", warm) == campaign_render(
        fig9, "fig9", cold
    )


def test_smoke_fig9_parallel_matches_golden_within_budget(tmp_path):
    """Tier-1 smoke: fig9 through 2 workers is byte-identical to the
    serial golden, the warm rerun executes nothing, and the whole thing
    lands within the wall budget."""
    jobs = fig9.jobs(seed=1, seconds=1.0)
    cache = ResultCache(tmp_path / "cache")

    t0 = time.perf_counter()
    cold = run_jobs(jobs, workers=2, cache=cache)
    warm = run_jobs(jobs, workers=2, cache=cache)
    wall = time.perf_counter() - t0

    golden = (GOLDEN_DIR / "fig9_seed1_1s.txt").read_text()
    assert campaign_render(fig9, "fig9", cold) == golden
    assert campaign_render(fig9, "fig9", warm) == golden
    assert cold.stats.executed == cold.stats.unique > 0
    assert warm.stats.executed == 0
    assert warm.stats.cached == warm.stats.unique
    assert wall < SMOKE_WALL_BUDGET_S
    # The warm pass must be dominated by the cold one: results come off
    # disk, not out of fresh simulations.
    assert warm.stats.wall_s < cold.stats.wall_s / 2
