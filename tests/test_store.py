"""The layered result store: index, queries, planning, self-healing.

The index is advisory — entry files are the source of truth — so every
test here checks both directions: index rows must answer queries
without unpickling a single payload, and damage to either side (torn
index tail, vanished entry file, killed writer mid-campaign) must be
detected and healed back to exactly the surviving entries.
"""

import json
import pickle

import pytest

from repro.campaign.executor import run_jobs
from repro.campaign.faults import FaultPlan
from repro.campaign.job import make_job
from repro.campaign.policy import RetryPolicy
from repro.campaign.store import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIRNAME,
    ResultStore,
    StoreIndex,
    default_store_root,
    job_meta,
)

ECHO = "repro.campaign.faults:echo"


def echo_job(value, experiment="store-test", seed=None):
    params = {"value": value}
    if seed is not None:
        params["seed"] = seed
    return make_job(experiment, f"key-{value}", ECHO, params)


# ----------------------------------------------------------------------
# default-root resolution (the relative-path footgun fix)
# ----------------------------------------------------------------------
def test_env_var_wins(tmp_path, monkeypatch):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "env-store"))
    assert default_store_root() == tmp_path / "env-store"


def test_repo_root_beats_cwd(tmp_path, monkeypatch):
    monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
    (tmp_path / ".git").mkdir()
    sub = tmp_path / "src" / "deep"
    sub.mkdir(parents=True)
    monkeypatch.chdir(sub)
    # Run from a subdirectory: the store still lands at the repo root,
    # not under the CWD (the old behaviour grew a second cold cache).
    assert default_store_root() == tmp_path / DEFAULT_CACHE_DIRNAME


def test_cwd_fallback_outside_any_repo(tmp_path, monkeypatch):
    monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
    monkeypatch.chdir(tmp_path)
    assert default_store_root() == (
        tmp_path / DEFAULT_CACHE_DIRNAME
    ).relative_to(tmp_path)


# ----------------------------------------------------------------------
# index + query + stat
# ----------------------------------------------------------------------
def test_put_for_job_indexes_and_queries(tmp_path):
    store = ResultStore(tmp_path / "store")
    jobs = [echo_job(i, seed=i % 2) for i in range(4)]
    for job in jobs:
        store.put_for_job(job, {"echo": job.key})
    rows = store.query(experiment="store-test")
    assert len(rows) == 4
    digests = {job.digest for job in jobs}
    assert {digest for digest, _ in rows} == digests
    assert all(meta["executor"] == ECHO for _, meta in rows)
    # seed filter
    assert len(store.query(seed=0)) == 2
    assert len(store.query(seed=1)) == 2
    assert store.query(experiment="other") == []
    # digest-prefix filter
    some = jobs[0].digest
    assert [d for d, _ in store.query(digest_prefix=some[:12])] == [some]


def test_query_never_unpickles(tmp_path, monkeypatch):
    store = ResultStore(tmp_path / "store")
    for i in range(3):
        store.put_for_job(echo_job(i), {"echo": i})

    def boom(*a, **k):  # pragma: no cover - must never run
        raise AssertionError("query unpickled a payload")

    reopened = ResultStore(tmp_path / "store")
    monkeypatch.setattr(pickle, "loads", boom)
    monkeypatch.setattr(pickle, "load", boom)
    assert len(reopened.query(experiment="store-test")) == 3
    assert reopened.stat(echo_job(0).digest)["indexed"]


def test_stat_reports_size_and_meta(tmp_path):
    store = ResultStore(tmp_path / "store")
    job = echo_job("x", seed=7)
    store.put_for_job(job, {"echo": "x"})
    st = store.stat(job.digest)
    assert st["size_bytes"] > 0
    assert st["indexed"] and st["seed"] == 7
    assert st["experiment"] == "store-test"
    assert store.stat("f" * 64) is None


def test_scenario_meta_family_and_seed(tmp_path):
    from repro.scenario.registry import build_spec
    from repro.scenario.runner import scenario_job

    spec = build_spec("churn", seconds=1.0, seed=5)
    meta = job_meta(scenario_job(spec, key=spec.name))
    assert meta["family"] == "churn"  # "[overrides]" suffix stripped
    assert meta["seed"] == 5
    assert meta["experiment"] == "scenario"


# ----------------------------------------------------------------------
# incremental-sweep planning
# ----------------------------------------------------------------------
def test_plan_splits_cached_and_missing(tmp_path):
    store = ResultStore(tmp_path / "store")
    jobs = [echo_job(i) for i in range(6)]
    for job in jobs[:2]:
        store.put_for_job(job, {"echo": job.key})
    plan = store.plan(jobs)
    assert [j.key for j in plan.cached] == [j.key for j in jobs[:2]]
    assert [j.key for j in plan.missing] == [j.key for j in jobs[2:]]
    assert plan.total == 6
    assert "2 cached, 4 missing of 6 job(s)" in plan.summary()


def test_half_cached_100_config_sweep_executes_exactly_the_missing(
    tmp_path,
):
    """The acceptance bar: plan a 100-config sweep against a store
    holding half of it; executing only ``plan.missing`` runs exactly
    the missing 50 (by the executor's own stats)."""
    store = ResultStore(tmp_path / "store")
    jobs = [echo_job(i) for i in range(100)]
    warm = run_jobs(jobs[:50], workers=1, cache=store)
    assert warm.stats.executed == 50
    plan = store.plan(jobs)
    assert len(plan.cached) == 50 and len(plan.missing) == 50
    outcome = run_jobs(plan.missing, workers=1, cache=store)
    assert outcome.stats.executed == 50
    assert outcome.stats.cached == 0
    assert store.plan(jobs).missing == []


def test_plan_collapses_duplicate_digests(tmp_path):
    store = ResultStore(tmp_path / "store")
    jobs = [echo_job(0), echo_job(0, experiment="other"), echo_job(1)]
    assert jobs[0].digest == jobs[1].digest  # experiment not in digest
    plan = store.plan(jobs)
    assert len(plan.missing) == 3
    assert len(plan.missing_digests) == 2


# ----------------------------------------------------------------------
# crash consistency and self-healing
# ----------------------------------------------------------------------
def test_corrupt_index_tail_is_skipped(tmp_path):
    store = ResultStore(tmp_path / "store")
    for i in range(3):
        store.put_for_job(echo_job(i), {"echo": i})
    # A writer killed mid-append leaves a torn final line.
    with open(store.index.path, "a") as fh:
        fh.write('{"op": "add", "digest": "dead')
    reopened = ResultStore(tmp_path / "store")
    assert len(reopened.index.entries) == 3
    assert reopened.index.corrupt_lines == 1
    # Compaction drops the damage for good.
    reopened.index.rewrite()
    again = ResultStore(tmp_path / "store")
    assert again.index.corrupt_lines == 0
    assert len(again.index.entries) == 3


def test_verify_and_reindex_heal_both_directions(tmp_path):
    store = ResultStore(tmp_path / "store")
    jobs = [echo_job(i) for i in range(4)]
    for job in jobs:
        store.put_for_job(job, {"echo": job.key})
    # Dangling row: entry file vanished behind the index's back.
    store.path_for(jobs[0].digest).unlink()
    # Unindexed entry: payload written through the raw cache layer
    # (e.g. a pre-index directory, or a crash before the index append).
    extra = echo_job(99)
    super(ResultStore, store).put(extra.digest, {"echo": 99})
    dangling, unindexed = store.verify_index()
    assert dangling == [jobs[0].digest]
    assert unindexed == [extra.digest]
    entries, added, dropped = store.reindex()
    assert (entries, added, dropped) == (4, 1, 1)
    assert store.verify_index() == ([], [])
    # The rebuilt index matches exactly the surviving entries, and kept
    # the metadata of the rows it already knew.
    assert sorted(store.index.entries) == store.entry_digests()
    assert store.index.entries[jobs[1].digest]["experiment"] == "store-test"


def test_get_self_heals_stale_row(tmp_path):
    store = ResultStore(tmp_path / "store")
    job = echo_job(1)
    store.put_for_job(job, {"echo": 1})
    store.path_for(job.digest).unlink()
    hit, value = store.get(job.digest)
    assert not hit and value is None
    assert job.digest not in store.index.entries


def test_index_survives_faulted_campaign(tmp_path):
    """PR 6 fault plan vs the index: after kill and corrupt faults the
    index must describe exactly the surviving entries."""
    store = ResultStore(tmp_path / "store")
    jobs = [echo_job(i) for i in range(6)]
    plan = FaultPlan.from_json(json.dumps([
        {"digest_prefix": jobs[0].digest[:16], "attempt": 1,
         "action": "kill"},
        {"digest_prefix": jobs[1].digest[:16], "attempt": 1,
         "action": "corrupt"},
    ]))
    outcome = run_jobs(
        jobs,
        workers=2,
        cache=store,
        fault_plan=plan,
        retry=RetryPolicy(max_attempts=3, backoff_base_s=0.01),
    )
    assert len(outcome.results) == 6
    assert outcome.stats.retried >= 2
    reopened = ResultStore(tmp_path / "store")
    assert reopened.verify_index() == ([], [])
    assert sorted(reopened.index.entries) == reopened.entry_digests()
    assert len(reopened.entry_digests()) == 6


def test_clear_resets_index(tmp_path):
    store = ResultStore(tmp_path / "store")
    for i in range(3):
        store.put_for_job(echo_job(i), {"echo": i})
    assert store.clear() == 3
    assert store.index.entries == {}
    assert ResultStore(tmp_path / "store").index.entries == {}


def test_payload_format_is_cache_compatible(tmp_path):
    """A ResultStore entry is byte-identical to a ResultCache entry —
    existing warm caches upgrade in place."""
    from repro.campaign.cache import ResultCache

    job = echo_job("compat")
    store = ResultStore(tmp_path / "a")
    cache = ResultCache(tmp_path / "b")
    p1 = store.put_for_job(job, {"v": 1})
    p2 = cache.put(job.digest, {"v": 1})
    assert p1.read_bytes() == p2.read_bytes()
    # And the raw-cache reader accepts the store's entry.
    hit, value = ResultCache(tmp_path / "a").get(job.digest)
    assert hit and value == {"v": 1}


def test_index_ops_are_idempotent(tmp_path):
    index = StoreIndex(tmp_path / "index.jsonl")
    index.add("a" * 64, {"experiment": "x"})
    size = index.path.stat().st_size
    index.add("a" * 64, {"experiment": "x"})  # no-op re-put
    assert index.path.stat().st_size == size
    index.remove("b" * 64)  # removing the absent is silent
    assert index.path.stat().st_size == size
