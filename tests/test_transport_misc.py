"""Tests for UDP, apps, wired links, packets and flow stats."""

import pytest

from repro.sim import Simulator, us_from_ms, us_from_s
from repro.transport import (
    BulkApp,
    FlowStats,
    PacedApp,
    Packet,
    TaskApp,
    TcpSender,
    UdpSender,
    UdpSink,
    WiredLink,
)


# ----------------------------------------------------------------------
# Packet
# ----------------------------------------------------------------------
def test_packet_fields_and_deliver():
    got = []
    pkt = Packet(100, "sta", to_station=True, payload="x",
                 on_receive=got.append)
    pkt.deliver()
    assert got == [pkt]
    assert pkt.station == "sta"
    assert pkt.to_station


def test_packet_deliver_without_handler_is_noop():
    Packet(100, "sta", to_station=False).deliver()


def test_packet_size_validation():
    with pytest.raises(ValueError):
        Packet(0, "sta", to_station=True)


def test_packet_uids_unique():
    a = Packet(1, "s", to_station=True)
    b = Packet(1, "s", to_station=True)
    assert a.uid != b.uid


# ----------------------------------------------------------------------
# UDP
# ----------------------------------------------------------------------
def test_udp_cbr_rate():
    sim = Simulator(seed=1)
    sent_bytes = []
    sender = UdpSender(sim, "u", lambda size, d: sent_bytes.append(size),
                       rate_mbps=2.0, payload_bytes=1472)
    sim.run(until=us_from_s(2.0))
    rate = sum(sent_bytes) * 8.0 / us_from_s(2.0)
    assert rate == pytest.approx(2.0, rel=0.05)


def test_udp_jitter_keeps_long_term_rate():
    sim = Simulator(seed=2)
    count = []
    UdpSender(sim, "u", lambda s, d: count.append(s), rate_mbps=4.0,
              jitter_fraction=0.3)
    sim.run(until=us_from_s(3.0))
    rate = sum(count) * 8.0 / us_from_s(3.0)
    assert rate == pytest.approx(4.0, rel=0.05)


def test_udp_stop():
    sim = Simulator(seed=1)
    count = []
    sender = UdpSender(sim, "u", lambda s, d: count.append(s), rate_mbps=8.0)
    sim.run(until=us_from_ms(100))
    sender.stop()
    n = len(count)
    sim.run(until=us_from_s(1.0))
    assert len(count) == n


def test_udp_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        UdpSender(sim, "u", lambda s, d: None, rate_mbps=0.0)
    with pytest.raises(ValueError):
        UdpSender(sim, "u", lambda s, d: None, rate_mbps=1.0, payload_bytes=0)
    with pytest.raises(ValueError):
        UdpSender(sim, "u", lambda s, d: None, rate_mbps=1.0,
                  jitter_fraction=1.0)


def test_udp_sink_counts_and_detects_reordering():
    from repro.transport.udp import UdpDatagram

    sim = Simulator()
    stats = FlowStats(sim, "f")
    sink = UdpSink(stats)
    sink.on_datagram(UdpDatagram(1, 0.0), 1500)
    sink.on_datagram(UdpDatagram(3, 0.0), 1500)
    sink.on_datagram(UdpDatagram(2, 0.0), 1500)
    assert sink.received == 3
    assert sink.reordered == 1
    assert stats.bytes_delivered == 4500


# ----------------------------------------------------------------------
# apps
# ----------------------------------------------------------------------
def test_bulk_app_unbounds_sender():
    sim = Simulator()
    sender = TcpSender(sim, "s", lambda s, p: None)
    BulkApp(sender)
    assert sender.app_limit is None


def test_task_app_validation():
    sim = Simulator()
    sender = TcpSender(sim, "s", lambda s, p: None)
    with pytest.raises(ValueError):
        TaskApp(sim, sender, 0)


def test_paced_app_supplies_at_rate():
    sim = Simulator()
    supplied = []
    sender = TcpSender(sim, "s", lambda s, p: None)
    sender.supply = lambda n: supplied.append(n)  # spy
    PacedApp(sim, sender, rate_mbps=1.0, chunk_interval_us=10_000.0)
    sim.run(until=us_from_s(1.0))
    total = sum(supplied)
    assert total == pytest.approx(1e6 / 8.0, rel=0.02)


def test_paced_app_stop():
    sim = Simulator()
    supplied = []
    sender = TcpSender(sim, "s", lambda s, p: None)
    sender.supply = lambda n: supplied.append(n)
    app = PacedApp(sim, sender, rate_mbps=1.0)
    sim.run(until=us_from_ms(100))
    app.stop()
    n = len(supplied)
    sim.run(until=us_from_s(1.0))
    assert len(supplied) == n


def test_paced_app_validation():
    sim = Simulator()
    sender = TcpSender(sim, "s", lambda s, p: None)
    with pytest.raises(ValueError):
        PacedApp(sim, sender, rate_mbps=0.0)


# ----------------------------------------------------------------------
# wired link
# ----------------------------------------------------------------------
def test_wired_link_delay():
    sim = Simulator()
    got = []
    link = WiredLink(sim, delay_us=2000.0)
    pkt = Packet(100, "s", to_station=False)
    link.send(pkt, lambda p: got.append(sim.now))
    sim.run()
    assert got == [2000.0]


def test_wired_link_serialization_rate():
    sim = Simulator()
    got = []
    link = WiredLink(sim, delay_us=0.0, rate_mbps=8.0)  # 1 B/us
    for _ in range(3):
        link.send(Packet(1000, "s", to_station=False),
                  lambda p: got.append(sim.now))
    sim.run()
    assert got == [1000.0, 2000.0, 3000.0]


def test_wired_link_fifo_order():
    sim = Simulator()
    got = []
    link = WiredLink(sim, delay_us=100.0, rate_mbps=8.0)
    a = Packet(1000, "s", to_station=False)
    b = Packet(10, "s", to_station=False)
    link.send(a, got.append)
    link.send(b, got.append)
    sim.run()
    assert got == [a, b]


def test_wired_link_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        WiredLink(sim, delay_us=-1.0)
    with pytest.raises(ValueError):
        WiredLink(sim, rate_mbps=-1.0)


# ----------------------------------------------------------------------
# flow stats
# ----------------------------------------------------------------------
def test_flow_stats_throughput_and_reset():
    sim = Simulator()
    stats = FlowStats(sim, "f")
    stats.on_deliver(12500)  # 100000 bits
    sim.run(until=10_000.0)
    assert stats.throughput_mbps() == pytest.approx(10.0)
    stats.reset()
    assert stats.bytes_delivered == 0
    assert stats.throughput_mbps() == 0.0


def test_flow_stats_interval_window():
    sim = Simulator()
    stats = FlowStats(sim, "f")
    stats.on_deliver(1000)
    sim.run(until=1000.0)
    stats.mark()
    stats.on_deliver(1250)
    sim.run(until=2000.0)
    assert stats.interval_throughput_mbps() == pytest.approx(10.0)


def test_flow_stats_completion():
    sim = Simulator()
    stats = FlowStats(sim, "f")
    assert not stats.completed
    sim.run(until=500.0)
    stats.mark_complete()
    stats.mark_complete()  # idempotent
    assert stats.completed
    assert stats.completion_time_us() == 500.0
