"""Tests for stations, the AP and the Cell scenario builder."""

import pytest

from repro.core import TbrConfig, TbrScheduler
from repro.node import AccessPoint, ArfController, Cell, FixedRate
from repro.phy import DOT11B_LONG_PREAMBLE, ack_airtime_us, frame_airtime_us
from repro.queueing import ApFifoScheduler, DrrScheduler, RoundRobinScheduler


# ----------------------------------------------------------------------
# Cell construction
# ----------------------------------------------------------------------
def test_scheduler_by_name():
    assert isinstance(Cell(scheduler="fifo").scheduler, ApFifoScheduler)
    assert isinstance(Cell(scheduler="rr").scheduler, RoundRobinScheduler)
    assert isinstance(Cell(scheduler="drr").scheduler, DrrScheduler)
    assert isinstance(Cell(scheduler="tbr").scheduler, TbrScheduler)


def test_scheduler_instance_accepted():
    sched = RoundRobinScheduler()
    assert Cell(scheduler=sched).scheduler is sched


def test_unknown_scheduler_rejected():
    with pytest.raises(ValueError):
        Cell(scheduler="wfq")


def test_duplicate_station_rejected():
    cell = Cell()
    cell.add_station("x")
    with pytest.raises(ValueError):
        cell.add_station("x")


def test_station_auto_naming():
    cell = Cell()
    a = cell.add_station()
    b = cell.add_station()
    assert a.address == "sta0" and b.address == "sta1"


def test_add_station_associates_with_ap():
    cell = Cell(scheduler="tbr")
    cell.add_station("n1")
    assert "n1" in cell.scheduler.buckets


def test_downlink_rate_defaults_to_station_rate():
    cell = Cell()
    cell.add_station("slow", rate_mbps=1.0)
    assert cell.ap.rate_controller.rate_for("slow") == 1.0


def test_downlink_rate_override():
    cell = Cell()
    cell.add_station("x", rate_mbps=11.0, downlink_rate_mbps=2.0)
    assert cell.ap.rate_controller.rate_for("x") == 2.0


def test_flow_validation():
    cell = Cell()
    station = cell.add_station("x")
    with pytest.raises(ValueError):
        cell.tcp_flow(station, direction="sideways")
    with pytest.raises(ValueError):
        cell.tcp_flow(station, app="task")  # missing task_bytes
    with pytest.raises(ValueError):
        cell.tcp_flow(station, app="paced")  # missing paced_mbps
    with pytest.raises(ValueError):
        cell.tcp_flow(station, app="quic")
    with pytest.raises(ValueError):
        cell.udp_flow(station, direction="sideways")


# ----------------------------------------------------------------------
# end-to-end flows
# ----------------------------------------------------------------------
def test_tcp_uplink_delivers():
    cell = Cell(seed=1)
    station = cell.add_station("n1")
    flow = cell.tcp_flow(station, direction="up")
    cell.run(seconds=2.0)
    assert flow.stats.bytes_delivered > 500_000
    assert flow.throughput_mbps() > 2.0


def test_tcp_downlink_delivers():
    cell = Cell(seed=1)
    station = cell.add_station("n1")
    flow = cell.tcp_flow(station, direction="down")
    cell.run(seconds=2.0)
    assert flow.throughput_mbps() > 2.0


def test_udp_downlink_delivers_at_offered_rate():
    cell = Cell(seed=1)
    station = cell.add_station("n1")
    flow = cell.udp_flow(station, direction="down", rate_mbps=2.0)
    cell.run(seconds=2.0)
    assert flow.throughput_mbps() == pytest.approx(2.0, rel=0.1)


def test_udp_uplink_delivers():
    cell = Cell(seed=1)
    station = cell.add_station("n1")
    flow = cell.udp_flow(station, direction="up", rate_mbps=2.0)
    cell.run(seconds=2.0)
    assert flow.throughput_mbps() == pytest.approx(2.0, rel=0.1)


def test_task_flow_completes():
    cell = Cell(seed=1)
    station = cell.add_station("n1")
    flow = cell.tcp_flow(station, direction="up", app="task",
                         task_bytes=200_000)
    cell.run(seconds=5.0)
    assert flow.stats.completed
    assert flow.stats.bytes_delivered == 200_000


def test_paced_flow_respects_rate():
    cell = Cell(seed=1)
    station = cell.add_station("n1")
    flow = cell.tcp_flow(station, direction="up", app="paced", paced_mbps=1.0)
    cell.run(seconds=4.0, warmup_seconds=1.0)
    assert flow.throughput_mbps(cell.measured_us) == pytest.approx(1.0, rel=0.15)


def test_warmup_resets_measurements():
    cell = Cell(seed=1)
    station = cell.add_station("n1")
    flow = cell.tcp_flow(station, direction="up")
    cell.run(seconds=2.0, warmup_seconds=1.0)
    # Throughput computed over the 2 s measurement window only.
    assert cell.measured_us == pytest.approx(2_000_000.0)
    assert flow.stats.throughput_mbps(cell.measured_us) > 2.0


def test_station_throughputs_aggregate_flows():
    cell = Cell(seed=1)
    station = cell.add_station("n1")
    cell.udp_flow(station, direction="down", rate_mbps=1.0)
    cell.udp_flow(station, direction="down", rate_mbps=1.0)
    cell.run(seconds=2.0)
    per_station = cell.station_throughputs_mbps()
    assert per_station["n1"] == pytest.approx(2.0, rel=0.1)


def test_occupancy_accounts_both_directions():
    cell = Cell(seed=1)
    n1 = cell.add_station("n1")
    n2 = cell.add_station("n2")
    cell.tcp_flow(n1, direction="up")
    cell.tcp_flow(n2, direction="down")
    cell.run(seconds=2.0)
    occ = cell.occupancy_fractions()
    assert occ["n1"] > 0.1 and occ["n2"] > 0.1
    assert sum(occ.values()) < 1.01
    shares = cell.occupancy_shares()
    assert sum(shares.values()) == pytest.approx(1.0)


def test_flow_names_unique_and_descriptive():
    cell = Cell()
    station = cell.add_station("n1")
    f1 = cell.tcp_flow(station, direction="up")
    f2 = cell.udp_flow(station, direction="down")
    assert f1.name == "n1/tcp-up"
    assert f2.name == "n1/udp-down"


# ----------------------------------------------------------------------
# AP specifics
# ----------------------------------------------------------------------
def test_ap_exchange_estimate_formula():
    cell = Cell()
    phy = DOT11B_LONG_PREAMBLE
    est = cell.ap.estimate_exchange_airtime(1500, 11.0)
    expected = (
        phy.difs_us
        + frame_airtime_us(phy, 1500, 11.0)
        + phy.sifs_us
        + ack_airtime_us(phy, 2.0)
    )
    assert est == pytest.approx(expected)


def test_ap_estimate_with_attempts():
    cell = Cell()
    one = cell.ap.estimate_exchange_airtime(1500, 11.0, attempts=1)
    three = cell.ap.estimate_exchange_airtime(1500, 11.0, attempts=3)
    phy = DOT11B_LONG_PREAMBLE
    per_attempt = phy.difs_us + frame_airtime_us(phy, 1500, 11.0)
    assert three - one == pytest.approx(2 * per_attempt)


def test_ap_set_downlink_rate_requires_fixed_controller():
    cell = Cell(ap_rate_controller=ArfController())
    with pytest.raises(TypeError):
        cell.ap.set_downlink_rate("x", 5.5)


def test_station_cooperation_gate():
    cell = Cell(seed=1, scheduler="tbr",
                tbr_config=TbrConfig(notify_clients=True))
    station = cell.add_station("n1", cooperate_with_tbr=True)
    assert station.queue.release_gate is not None
    station._on_defer_hint(1_000.0)
    assert not station._may_transmit()
    cell.sim.run(until=cell.sim.now + 1_001.0)
    assert station._may_transmit()


def test_determinism_end_to_end():
    def run():
        cell = Cell(seed=33, scheduler="tbr")
        n1 = cell.add_station("n1", rate_mbps=1.0)
        n2 = cell.add_station("n2", rate_mbps=11.0)
        cell.tcp_flow(n1, direction="up")
        cell.tcp_flow(n2, direction="down")
        cell.run(seconds=1.5)
        return cell.throughputs_mbps()

    assert run() == run()
