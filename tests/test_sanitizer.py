"""The runtime invariant sanitizer: loud on corruption, invisible when clean.

Two contracts matter.  First, observation-only: a sanitized run must
execute the exact same event sequence as an unsanitized one (no
randomness drawn, nothing scheduled), so goldens hold either way.
Second, detection: each invariant — monotone time, no delivery to
detached MACs, TBR accounting, live-share stranding, end-of-run packet
conservation — must actually fire on the corruption it claims to
catch, with the component and sim-time attached to the violation.
"""

import pickle

import pytest

from repro.scenario import (
    FlowSpec,
    ReaperSpec,
    ScenarioSpec,
    StationCrashEvent,
    StationSpec,
)
from repro.scenario.builder import ScenarioRuntime
from repro.scenario.runner import run_spec
from repro.sim.sanitizer import (
    SANITIZE_ENV,
    InvariantViolation,
    RuntimeSanitizer,
    pool_leak,
    sanitize_enabled,
)


def _crash_spec(*, reaper, seconds=5.0):
    return ScenarioSpec(
        name="sanitize-crash",
        scheduler="tbr",
        stations=(
            StationSpec("survivor", rate_mbps=11.0),
            StationSpec("victim", rate_mbps=1.0),
        ),
        flows=(
            FlowSpec(station="survivor", kind="tcp", direction="up"),
            FlowSpec(station="victim", kind="udp", direction="down",
                     rate_mbps=2.0),
        ),
        timeline=(StationCrashEvent(at_s=1.0, station="victim"),),
        seconds=seconds,
        warmup_seconds=0.5,
        seed=1,
        reaper=reaper,
    )


def test_sanitized_run_is_byte_identical_to_unsanitized():
    spec = ScenarioSpec(
        name="sanitize-clean",
        scheduler="tbr",
        stations=(
            StationSpec("a", rate_mbps=11.0),
            StationSpec("b", rate_mbps=2.0),
        ),
        flows=(
            FlowSpec(station="a", kind="tcp", direction="up"),
            FlowSpec(station="b", kind="udp", direction="down",
                     rate_mbps=2.0),
        ),
        seconds=2.0,
        warmup_seconds=0.5,
        seed=4,
    )
    plain = run_spec(spec, sanitize=False)
    checked = run_spec(spec, sanitize=True)
    assert pickle.dumps(plain) == pickle.dumps(checked)


def test_stranded_rate_regression_is_caught():
    # The deliberate regression from the issue: crash with the reaper
    # disabled strands the victim's token rate; the live-share check
    # must catch it once the deficit outlives the grace period.
    with pytest.raises(InvariantViolation) as exc_info:
        run_spec(_crash_spec(reaper=None), sanitize=True)
    violation = exc_info.value
    assert violation.component == "tbr"
    assert "stranded" in violation.detail
    assert "victim" in violation.detail
    assert violation.t_us > 0


def test_reaper_keeps_the_same_run_clean():
    # Same crash, reaper armed: the dead peer is torn down inside the
    # grace period and the whole run sanitizes clean.
    result = run_spec(
        _crash_spec(reaper=ReaperSpec(idle_timeout_s=0.4)), sanitize=True
    )
    assert result.pool_leaked == 0


def test_pool_leak_is_detected_at_finalize():
    spec = ScenarioSpec(
        name="sanitize-leak",
        stations=(StationSpec("a", rate_mbps=11.0),),
        flows=(
            FlowSpec(station="a", kind="udp", direction="down",
                     rate_mbps=2.0),
        ),
        seconds=1.0,
        warmup_seconds=0.2,
        seed=1,
    )
    runtime = ScenarioRuntime(spec, sanitize=False)
    runtime.run()
    cell = runtime.cell
    assert pool_leak(cell) == 0
    # Manufacture the leak: take a packet out of the pool and drop it
    # on the floor (never released, never queued anywhere).
    cell.ap.packet_pool.get()
    sanitizer = RuntimeSanitizer(cell)
    with pytest.raises(InvariantViolation) as exc_info:
        sanitizer.finalize()
    assert exc_info.value.component == "packet-pool"
    assert "+1" in exc_info.value.detail


def test_time_regression_is_caught():
    runtime = ScenarioRuntime(
        ScenarioSpec(
            name="sanitize-mono",
            stations=(StationSpec("a", rate_mbps=11.0),),
            flows=(FlowSpec(station="a", kind="tcp", direction="up"),),
            seconds=0.5,
        ),
        sanitize=False,
    )
    sanitizer = RuntimeSanitizer(runtime.cell)
    sanitizer._trace(100.0, lambda: None)
    with pytest.raises(InvariantViolation, match="regressed"):
        sanitizer._trace(99.0, lambda: None)


def test_delivery_to_detached_mac_is_caught():
    runtime = ScenarioRuntime(
        ScenarioSpec(
            name="sanitize-detached",
            stations=(StationSpec("a", rate_mbps=11.0),),
            flows=(FlowSpec(station="a", kind="tcp", direction="up"),),
            seconds=0.5,
        ),
        sanitize=False,
    )
    cell = runtime.cell
    mac = cell.stations["a"].mac
    sanitizer = RuntimeSanitizer(cell)
    # Attached: any callback on the MAC is fine.
    sanitizer._trace(10.0, mac._ack_timeout)
    mac.shutdown()
    with pytest.raises(InvariantViolation, match="detached"):
        sanitizer._trace(20.0, mac._ack_timeout)
    # Guard-style fire-and-forget callbacks are exempt: they are
    # scheduled without a handle and legitimately outlive a shutdown.
    sanitizer._trace(30.0, mac._broadcast_done)


def test_violation_carries_structured_fields():
    violation = InvariantViolation("tbr/x", 1234.5, "it broke")
    assert violation.component == "tbr/x"
    assert violation.t_us == 1234.5
    assert violation.detail == "it broke"
    assert isinstance(violation, AssertionError)
    assert "[sanitize] tbr/x @ 1234.5us: it broke" in str(violation)


def test_env_switch_parsing(monkeypatch):
    monkeypatch.delenv(SANITIZE_ENV, raising=False)
    assert not sanitize_enabled()
    for value, expected in (
        ("1", True), ("true", True), ("YES", True),
        ("0", False), ("", False), ("no", False),
    ):
        monkeypatch.setenv(SANITIZE_ENV, value)
        assert sanitize_enabled() is expected


def test_env_switch_drives_scenario_runtime(monkeypatch):
    spec = ScenarioSpec(
        name="sanitize-env",
        stations=(StationSpec("a", rate_mbps=11.0),),
        flows=(FlowSpec(station="a", kind="tcp", direction="up"),),
        seconds=0.5,
    )
    monkeypatch.setenv(SANITIZE_ENV, "1")
    runtime = ScenarioRuntime(spec)
    assert runtime.sanitize
    monkeypatch.delenv(SANITIZE_ENV)
    assert not ScenarioRuntime(spec).sanitize
    # An explicit argument beats the environment either way.
    monkeypatch.setenv(SANITIZE_ENV, "1")
    assert not ScenarioRuntime(spec, sanitize=False).sanitize
