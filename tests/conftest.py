"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.channel import Channel
from repro.mac import DcfMac, FifoTxScheduler
from repro.phy import DOT11B_LONG_PREAMBLE
from repro.sim import Simulator, us_from_s


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: full-size multi-process campaign tests; skipped unless "
        "REPRO_RUN_SLOW=1 is set (tier-1 covers the same paths with "
        "small-N smoke configurations)",
    )


def pytest_collection_modifyitems(config, items):
    if os.environ.get("REPRO_RUN_SLOW", "").lower() not in ("", "0", "false", "no"):
        return
    skip_slow = pytest.mark.skip(
        reason="slow campaign test; set REPRO_RUN_SLOW=1 to run"
    )
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


class SimplePacket:
    """Duck-typed upper-layer packet for MAC-level tests."""

    def __init__(self, dst: str, size: int = 1500, station: str = "sta"):
        self.mac_dst = dst
        self.size_bytes = size
        self.station = station


class MacHarness:
    """An AP plus n stations on one channel, driven at the MAC layer."""

    def __init__(self, n_stations: int = 2, rates=None, seed: int = 1,
                 loss_model=None, phy=DOT11B_LONG_PREAMBLE):
        self.sim = Simulator(seed=seed)
        self.channel = Channel(self.sim, loss_model)
        self.phy = phy
        self.ap = DcfMac(self.sim, self.channel, "ap", phy)
        self.ap_sched = FifoTxScheduler()
        self.ap.attach_scheduler(self.ap_sched)
        self.rx_bytes = {}
        self.rx_frames = []
        self.ap.rx_handler = self._on_ap_rx
        self.macs = []
        self.scheds = []
        rates = rates if rates is not None else [11.0] * n_stations
        for i, rate in enumerate(rates):
            mac = DcfMac(
                self.sim, self.channel, f"sta{i}", phy, default_rate_mbps=rate
            )
            sched = FifoTxScheduler()
            mac.attach_scheduler(sched)
            self.macs.append(mac)
            self.scheds.append(sched)

    def _on_ap_rx(self, frame):
        self.rx_frames.append(frame)
        self.rx_bytes[frame.src] = (
            self.rx_bytes.get(frame.src, 0) + frame.size_bytes
        )

    def saturate(self, index: int, depth: int = 5, size: int = 1500) -> None:
        """Keep station ``index``'s queue topped up forever."""
        sched = self.scheds[index]
        sched.completion_listeners.append(
            lambda p, a, s, n, r, sched=sched, size=size: sched.enqueue(
                SimplePacket("ap", size)
            )
        )
        for _ in range(depth):
            sched.enqueue(SimplePacket("ap", size))

    def run_seconds(self, seconds: float) -> None:
        self.sim.run(until=self.sim.now + us_from_s(seconds))

    def throughput_mbps(self, src: str, seconds: float) -> float:
        return self.rx_bytes.get(src, 0) * 8.0 / us_from_s(seconds)


@pytest.fixture
def mac_harness():
    return MacHarness
