"""Seeded chaos soak: randomized fault timelines under the sanitizer.

The ``chaos`` scenario family turns a seed into a full fault timeline —
crashes, AP outages, loss bursts, traffic bursts, rate switches, a
leave/rejoin cycle — that is valid by construction.  The soak runs a
band of seeds under the runtime sanitizer: every invariant must hold
through every mix, every run must conserve pooled packets, and the
same seed must reproduce the identical run byte for byte (the whole
point of seeding the chaos).
"""

import pickle

import pytest

from repro.scenario import (
    ApOutageEvent,
    ChannelDegradeEvent,
    StationCrashEvent,
    build_spec,
)
from repro.scenario.runner import run_spec

#: The soak band.  Short horizons keep this inside the tier-1 budget;
#: CI's chaos job runs the same family longer.
SOAK_SEEDS = range(1, 5)
SOAK_SECONDS = 5.0


@pytest.mark.parametrize("seed", SOAK_SEEDS)
def test_chaos_soak_sanitizes_clean(seed):
    result = run_spec(
        build_spec("chaos", seed=seed, seconds=SOAK_SECONDS),
        sanitize=True,
    )
    assert result.pool_leaked == 0
    assert result.timeline_fired > 0  # the generator placed real events


def test_chaos_same_seed_is_byte_identical():
    first = run_spec(
        build_spec("chaos", seed=3, seconds=SOAK_SECONDS), sanitize=True
    )
    second = run_spec(
        build_spec("chaos", seed=3, seconds=SOAK_SECONDS), sanitize=True
    )
    assert pickle.dumps(first) == pickle.dumps(second)


def test_chaos_seeds_diverge():
    a = run_spec(build_spec("chaos", seed=1, seconds=2.0))
    b = run_spec(build_spec("chaos", seed=2, seconds=2.0))
    assert a.events_executed != b.events_executed


def test_chaos_specs_are_valid_by_construction():
    # A wide seed band must survive the validator without running:
    # the generator's exclusion-window and crash bookkeeping is load-
    # bearing for every seed, not just the soak band.
    for seed in range(1, 33):
        spec = build_spec("chaos", seed=seed)
        spec.validate()
        # Determinism of generation itself: same seed, same timeline.
        assert spec == build_spec("chaos", seed=seed)


def test_chaos_generator_mixes_fault_kinds():
    # Across a modest seed band every chaos event kind must appear —
    # otherwise the soak silently stops covering a fault class.
    kinds = set()
    for seed in range(1, 17):
        for event in build_spec("chaos", seed=seed).timeline:
            kinds.add(type(event).__name__)
    assert {
        ApOutageEvent.__name__,
        StationCrashEvent.__name__,
        ChannelDegradeEvent.__name__,
    } <= kinds
