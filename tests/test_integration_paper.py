"""Integration tests: the paper's headline claims, end to end.

These run short (a few simulated seconds) versions of the benchmark
experiments and assert *shape*: who wins, by roughly what factor, and
the invariants the paper derives.  The benchmarks in ``benchmarks/``
run the full-length versions.
"""

import pytest

from repro.core import TbrConfig
from repro.experiments.common import run_competing
from repro.node import Cell

SECONDS = 6.0
WARMUP = 2.0


def pair(rates, direction, scheduler, seed=1, tbr_config=None):
    return run_competing(
        rates, direction=direction, scheduler=scheduler,
        seconds=SECONDS, warmup_seconds=WARMUP, seed=seed,
        tbr_config=tbr_config,
    )


# ----------------------------------------------------------------------
# the anomaly (Figure 2)
# ----------------------------------------------------------------------
def test_anomaly_equal_throughput_unequal_time():
    res = pair([1.0, 11.0], "up", "fifo")
    thr = res.throughput_mbps
    assert abs(thr["n1"] - thr["n2"]) / (thr["n1"] + thr["n2"]) < 0.15
    assert res.occupancy["n1"] / res.occupancy["n2"] > 4.0


def test_anomaly_aggregate_collapse():
    same = pair([11.0, 11.0], "up", "fifo")
    mixed = pair([1.0, 11.0], "up", "fifo")
    # Paper: 5.08 -> 1.34, far below the naive average.
    assert mixed.total_mbps < 0.35 * same.total_mbps


def test_same_rate_pairs_fair_and_efficient():
    res = pair([11.0, 11.0], "up", "fifo")
    thr = res.throughput_mbps
    assert res.total_mbps > 4.5
    assert abs(thr["n1"] - thr["n2"]) < 0.5


# ----------------------------------------------------------------------
# TBR restores time fairness (Figures 3 and 9)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("direction", ["up", "down"])
def test_tbr_equalizes_channel_time_1v11(direction):
    res = pair([1.0, 11.0], direction, "tbr")
    occ = res.occupancy
    assert occ["n1"] / occ["n2"] < 2.0  # vs ~7x under DCF


@pytest.mark.parametrize("direction", ["up", "down"])
def test_tbr_aggregate_gain_1v11(direction):
    normal = pair([1.0, 11.0], direction, "fifo")
    tbr = pair([1.0, 11.0], direction, "tbr")
    gain = tbr.total_mbps / normal.total_mbps - 1.0
    assert gain > 0.6  # paper: ~+103%


def test_tbr_gain_shrinks_with_rate_similarity():
    gains = []
    for low in (1.0, 2.0, 5.5):
        normal = pair([low, 11.0], "down", "fifo")
        tbr = pair([low, 11.0], "down", "tbr")
        gains.append(tbr.total_mbps / normal.total_mbps - 1.0)
    assert gains[0] > gains[1] > gains[2] - 0.05
    assert gains[2] < 0.15  # 5.5vs11: small (paper +6%)


def test_tbr_no_overhead_same_rate():
    """Figure 8: same-rate cells perform identically with TBR."""
    for rate in (1.0, 11.0):
        normal = pair([rate, rate], "down", "fifo")
        tbr = pair([rate, rate], "down", "tbr")
        assert tbr.total_mbps == pytest.approx(normal.total_mbps, rel=0.1)


def test_baseline_property_simulated():
    """The 1 Mbps node under TBR-vs-11 gets what it gets vs another
    1 Mbps node under plain DCF (the paper's baseline property)."""
    tf_mixed = pair([1.0, 11.0], "up", "tbr")
    rf_same = pair([1.0, 1.0], "up", "fifo")
    expected = rf_same.throughput_mbps["n1"]
    assert tf_mixed.throughput_mbps["n1"] == pytest.approx(expected, rel=0.25)


def test_fast_node_reaches_half_baseline_under_tbr():
    tf_mixed = pair([1.0, 11.0], "down", "tbr")
    rf_same = pair([11.0, 11.0], "down", "fifo")
    half_baseline = rf_same.total_mbps / 2.0
    assert tf_mixed.throughput_mbps["n2"] == pytest.approx(
        half_baseline, rel=0.25
    )


# ----------------------------------------------------------------------
# rate adjustment (Table 4)
# ----------------------------------------------------------------------
def test_tbr_matches_dcf_with_app_limited_flow():
    results = {}
    for scheduler in ("fifo", "tbr"):
        cell = Cell(seed=1, scheduler=scheduler)
        n1 = cell.add_station("n1", rate_mbps=11.0)
        n2 = cell.add_station("n2", rate_mbps=11.0)
        cell.tcp_flow(n1, direction="up")
        cell.tcp_flow(n2, direction="up", app="paced", paced_mbps=2.1)
        cell.run(seconds=SECONDS, warmup_seconds=WARMUP)
        results[scheduler] = cell.station_throughputs_mbps()
    assert results["tbr"]["n2"] == pytest.approx(2.1, rel=0.1)
    assert results["tbr"]["n1"] == pytest.approx(
        results["fifo"]["n1"], rel=0.12
    )


# ----------------------------------------------------------------------
# four-node Table 3 shape
# ----------------------------------------------------------------------
def test_four_nodes_tf_beats_rf():
    rates = {"n1": 1.0, "n2": 2.0, "n3": 11.0, "n4": 11.0}
    rf = run_competing(rates, direction="up", scheduler="fifo",
                       seconds=SECONDS, warmup_seconds=WARMUP, seed=1)
    tf = run_competing(rates, direction="up", scheduler="tbr",
                       seconds=SECONDS, warmup_seconds=WARMUP, seed=1)
    assert tf.total_mbps / rf.total_mbps > 1.4  # paper: +82%
    # Fast nodes benefit, slow node is not starved.
    assert tf.throughput_mbps["n3"] > 2 * rf.throughput_mbps["n3"]
    assert tf.throughput_mbps["n1"] > 0.1


# ----------------------------------------------------------------------
# work conservation ablation
# ----------------------------------------------------------------------
def test_borrowing_fallback_defeats_uplink_regulation():
    strict = pair([1.0, 11.0], "up", "tbr",
                  tbr_config=TbrConfig(work_conserving=False))
    borrowing = pair([1.0, 11.0], "up", "tbr",
                     tbr_config=TbrConfig(work_conserving=True))
    assert strict.total_mbps > 1.5 * borrowing.total_mbps


# ----------------------------------------------------------------------
# weighted QoS extension
# ----------------------------------------------------------------------
def test_weighted_tbr_biases_occupancy():
    config = TbrConfig(weights={"n1": 3.0, "n2": 1.0}, adjust_interval_us=0)
    res = pair([11.0, 11.0], "down", "tbr", tbr_config=config)
    assert res.occupancy["n1"] / res.occupancy["n2"] > 1.8
    assert res.throughput_mbps["n1"] > 1.8 * res.throughput_mbps["n2"]
