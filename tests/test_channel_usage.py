"""Tests for per-station channel occupancy accounting."""

import pytest

from repro.channel import ChannelUsageMonitor
from repro.sim import Simulator


def test_occupancy_accumulates():
    sim = Simulator()
    usage = ChannelUsageMonitor(sim)
    usage.record_exchange("a", 100.0)
    usage.record_exchange("a", 50.0)
    usage.record_exchange("b", 25.0)
    assert usage.occupancy_us("a") == 150.0
    assert usage.occupancy_us("b") == 25.0
    assert usage.total_occupancy_us() == 175.0
    assert usage.exchanges("a") == 2


def test_unknown_station_zero():
    usage = ChannelUsageMonitor(Simulator())
    assert usage.occupancy_us("ghost") == 0.0
    assert usage.fraction_of_busy("ghost") == 0.0


def test_fraction_of_time():
    sim = Simulator()
    usage = ChannelUsageMonitor(sim)
    usage.record_exchange("a", 300.0)
    sim.run(until=1000.0)
    assert usage.fraction_of_time("a") == pytest.approx(0.3)
    assert usage.fraction_of_time("a", elapsed_us=600.0) == pytest.approx(0.5)


def test_fraction_of_busy_shares_sum_to_one():
    sim = Simulator()
    usage = ChannelUsageMonitor(sim)
    usage.record_exchange("a", 300.0)
    usage.record_exchange("b", 100.0)
    fractions = usage.fractions()
    assert sum(fractions.values()) == pytest.approx(1.0)
    assert fractions["a"] == pytest.approx(0.75)


def test_reset_clears_and_rebases_time():
    sim = Simulator()
    usage = ChannelUsageMonitor(sim)
    usage.record_exchange("a", 500.0)
    sim.run(until=1000.0)
    usage.reset()
    usage.record_exchange("a", 100.0)
    sim.run(until=2000.0)
    assert usage.occupancy_us("a") == 100.0
    assert usage.fraction_of_time("a") == pytest.approx(0.1)


def test_records_kept_when_requested():
    sim = Simulator()
    usage = ChannelUsageMonitor(sim, keep_records=True)
    usage.record_exchange(
        "a", 10.0, attempts=2, success=False, payload_bytes=1500,
        rate_mbps=11.0, direction="down",
    )
    assert len(usage.records) == 1
    rec = usage.records[0]
    assert rec.attempts == 2 and not rec.success and rec.direction == "down"


def test_records_not_kept_by_default():
    usage = ChannelUsageMonitor(Simulator())
    usage.record_exchange("a", 10.0)
    assert usage.records == []


def test_negative_airtime_rejected():
    usage = ChannelUsageMonitor(Simulator())
    with pytest.raises(ValueError):
        usage.record_exchange("a", -1.0)


def test_stations_sorted():
    usage = ChannelUsageMonitor(Simulator())
    usage.record_exchange("z", 1.0)
    usage.record_exchange("a", 1.0)
    assert usage.stations() == ["a", "z"]


def test_zero_elapsed_fraction_is_zero():
    usage = ChannelUsageMonitor(Simulator())
    usage.record_exchange("a", 10.0)
    assert usage.fraction_of_time("a") == 0.0
