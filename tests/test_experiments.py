"""Smoke + shape tests for every experiment module (short versions)."""

import pytest

from repro.experiments import (
    REGISTRY,
    ablations,
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig8,
    fig9,
    table1,
    table2,
    table3,
    table4,
)

S = 4.0  # short simulated seconds for smoke tests


def test_registry_complete():
    assert set(REGISTRY) == {
        "fig1", "fig2", "fig3", "fig4", "fig5", "fig8", "fig9",
        "table1", "table2", "table3", "table4", "fairness-churn",
        "fairness-outage",
    }
    for module in REGISTRY.values():
        assert hasattr(module, "run") and hasattr(module, "render")


def test_fig1_shapes():
    result = fig1.run(seed=1, seconds=8.0)
    assert set(result.fractions) == {"WS-1", "WS-2", "WS-3", "EXP-1"}
    for fractions in result.fractions.values():
        assert sum(fractions.values()) == pytest.approx(1.0)
    assert result.below_11_fraction("WS-2") > 0.30
    assert result.at_1_fraction("EXP-1") > 0.40
    assert "EXP-1" in fig1.render(result)


def test_fig1_exp1_rate_adaptation_settles():
    fractions = fig1.run_exp1(seed=2, seconds=8.0)
    # All four 802.11b rates appear (four receivers behind walls).
    assert set(fractions) >= {1.0, 5.5, 11.0}
    assert fractions[1.0] > fractions.get(2.0, 0.0)


def test_fig2_shape():
    result = fig2.run(seed=1, seconds=S)
    assert result.same_rate.total_mbps > 3 * result.mixed.total_mbps
    assert result.channel_time_ratio > 4.0
    assert "Figure 2" in fig2.render(result)


def test_fig3_shape():
    result = fig3.run(seed=1, seconds=S)
    mixed = result.cases[(1.0, 11.0)]
    assert mixed["tf"].total_mbps > 1.5 * mixed["rf"].total_mbps
    same = result.cases[(11.0, 11.0)]
    assert same["tf"].total_mbps == pytest.approx(
        same["rf"].total_mbps, rel=0.12
    )
    assert "Figure 3" in fig3.render(result)


def test_fig4_shape():
    result = fig4.run(seed=1, seconds=S)
    for config, res in result.runs.items():
        thr = list(res.throughput_mbps.values())
        assert max(thr) - min(thr) < 0.6, config
    # UDP beats TCP; up beats down.
    assert result.runs["udp_up"].total_mbps > result.runs["tcp_up"].total_mbps
    assert result.runs["udp_up"].total_mbps > result.runs["udp_down"].total_mbps
    assert "Figure 4" in fig4.render(result)


def test_fig5_shape():
    result = fig5.run(seed=1, duration_s=12 * 3600)
    assert result.mean_heaviest_fraction > 0.5
    assert result.solo_fraction < 0.25
    assert result.multi_user_fraction > 0.7
    assert "Figure 5" in fig5.render(result)


def test_fig8_shape():
    result = fig8.run(seed=1, seconds=S)
    for (direction, rate) in result.runs:
        assert abs(result.overhead_fraction(direction, rate)) < 0.15
    assert "Figure 8" in fig8.render(result)


def test_fig9_shape():
    result = fig9.run(seed=1, seconds=S)
    assert result.improvement("down", (1.0, 11.0)) > 0.6
    assert result.improvement("down", (5.5, 11.0)) < 0.2
    assert "Figure 9" in fig9.render(result)


def test_fig9_model_predictions():
    models = fig9.model_predictions((1.0, 11.0))
    assert models["eq6"]["n1"] == pytest.approx(models["eq6"]["n2"])
    assert models["eq12"]["n2"] / models["eq12"]["n1"] == pytest.approx(
        5.189 / 0.806, rel=0.01
    )


def test_table1_shape():
    result = table1.run(seed=1, max_seconds=60.0)
    assert result.rf.throughput_gap < result.tf.throughput_gap
    assert result.tf.time_gap < result.rf.time_gap
    assert result.tf.avg_task_time_s < result.rf.avg_task_time_s
    assert result.tf.final_task_time_s == pytest.approx(
        result.rf.final_task_time_s, rel=0.15
    )
    assert "Table 1" in table1.render(result)


def test_table2_shape():
    result = table2.run(seed=1, seconds=S)
    for rate, paper in result.paper_mbps.items():
        assert result.measured_mbps[rate] == pytest.approx(paper, rel=0.12)
    assert "Table 2" in table2.render(result)


def test_table3_shape():
    result = table3.run(seed=1, seconds=S)
    assert result.prediction.improvement == pytest.approx(0.82, abs=0.02)
    assert result.simulated_tf.total_mbps > 1.4 * result.simulated_rf.total_mbps
    assert "Table 3" in table3.render(result)


def test_table4_shape():
    result = table4.run(seed=1, seconds=S)
    for which in ("normal", "tbr"):
        assert result.throughput[which]["n2"] == pytest.approx(2.1, rel=0.12)
    assert result.throughput["tbr"]["n1"] == pytest.approx(
        result.throughput["normal"]["n1"], rel=0.15
    )
    assert "Table 4" in table4.render(result)


# ----------------------------------------------------------------------
# ablations
# ----------------------------------------------------------------------
def test_ablation_retry_accounting():
    result = ablations.run_retry_accounting(seed=1, seconds=S, loss_rate=0.1)
    # Without retry info the lossy slow node is favoured (paper's bias).
    assert result.slow_node_bias() > 0.0
    assert "Retry accounting" in ablations.render_retry_accounting(result)


def test_ablation_bucket_depth():
    result = ablations.run_bucket_depth(
        seed=1, seconds=S, depths_us=(50_000.0, 2_000_000.0)
    )
    shallow_lt, shallow_st = result.fairness[50_000.0]
    deep_lt, deep_st = result.fairness[2_000_000.0]
    # Deeper buckets hurt short-term fairness (Section 4.5).
    assert shallow_st >= deep_st - 0.02
    assert "Bucket depth" in ablations.render_bucket_depth(result)


def test_ablation_weighted_shares():
    result = ablations.run_weighted_shares(seed=1, seconds=S)
    assert result.occupancy_ratio() > 1.7
    assert "Weighted" in ablations.render_weighted_shares(result)


def test_ablation_work_conservation():
    result = ablations.run_work_conservation(seed=1, seconds=S)
    strict = sum(result.throughput["strict"].values())
    borrowing = sum(result.throughput["borrowing"].values())
    assert strict > 1.4 * borrowing
    assert "Work conservation" in ablations.render_work_conservation(result)


def test_ablation_client_cooperation():
    result = ablations.run_client_cooperation(seed=1, seconds=S)
    without = result.slow_occupancy("no-agent")
    with_agent = result.slow_occupancy("client-agent")
    assert with_agent < without - 0.15
    assert "Client cooperation" in ablations.render_client_cooperation(result)


def test_ablation_bg_coexistence():
    result = ablations.run_bg_coexistence(seed=1, seconds=S)
    assert result.g_recovery() > 3.0
    assert "coexistence" in ablations.render_bg_coexistence(result)
