"""Tests for the discrete-event kernel."""

import pytest

from repro.sim import Simulator, SimulationError, EventPriority


def test_initial_time_is_zero():
    assert Simulator().now == 0.0


def test_schedule_and_run_executes_callback():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, fired.append, "a")
    sim.run()
    assert fired == ["a"]
    assert sim.now == 10.0


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(30.0, order.append, 3)
    sim.schedule(10.0, order.append, 1)
    sim.schedule(20.0, order.append, 2)
    sim.run()
    assert order == [1, 2, 3]


def test_same_time_ordered_by_priority():
    sim = Simulator()
    order = []
    sim.schedule(5.0, order.append, "normal", priority=EventPriority.NORMAL)
    sim.schedule(5.0, order.append, "tx", priority=EventPriority.TX_START)
    sim.schedule(5.0, order.append, "monitor", priority=EventPriority.MONITOR)
    sim.run()
    assert order == ["tx", "normal", "monitor"]


def test_same_time_same_priority_fifo():
    sim = Simulator()
    order = []
    for i in range(5):
        sim.schedule(1.0, order.append, i)
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5.0, lambda: None)


def test_cancel_prevents_execution():
    sim = Simulator()
    fired = []
    event = sim.schedule(10.0, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []


def test_cancel_none_is_noop():
    Simulator.cancel(None)  # must not raise


def test_run_until_stops_clock_exactly():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, fired.append, "early")
    sim.schedule(100.0, fired.append, "late")
    sim.run(until=50.0)
    assert fired == ["early"]
    assert sim.now == 50.0
    sim.run()
    assert fired == ["early", "late"]


def test_event_at_until_boundary_not_executed():
    sim = Simulator()
    fired = []
    sim.schedule(50.0, fired.append, "x")
    sim.run(until=50.0)
    assert fired == []
    sim.run()
    assert fired == ["x"]


def test_run_for_advances_relative():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run_for(30.0)
    assert sim.now == 30.0
    sim.run_for(30.0)
    assert sim.now == 60.0


def test_run_with_empty_queue_advances_to_until():
    sim = Simulator()
    sim.run(until=123.0)
    assert sim.now == 123.0


def test_stop_halts_processing():
    sim = Simulator()
    fired = []

    def stopper():
        fired.append("stop")
        sim.stop()

    sim.schedule(1.0, stopper)
    sim.schedule(2.0, fired.append, "after")
    sim.run()
    assert fired == ["stop"]
    sim.run()
    assert fired == ["stop", "after"]


def test_max_events_budget():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_events_scheduled_during_execution_run():
    sim = Simulator()
    order = []

    def outer():
        order.append("outer")
        sim.schedule(5.0, order.append, "inner")

    sim.schedule(1.0, outer)
    sim.run()
    assert order == ["outer", "inner"]
    assert sim.now == 6.0


def test_call_soon_runs_at_current_time_after_current_event():
    sim = Simulator()
    order = []

    def outer():
        sim.call_soon(order.append, "soon")
        order.append("outer")

    sim.schedule(1.0, outer)
    sim.run()
    assert order == ["outer", "soon"]


def test_run_not_reentrant():
    sim = Simulator()

    def reenter():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1.0, reenter)
    sim.run()


def test_peek_returns_next_pending_time():
    sim = Simulator()
    assert sim.peek() is None
    event = sim.schedule(5.0, lambda: None)
    sim.schedule(9.0, lambda: None)
    assert sim.peek() == 5.0
    event.cancel()
    assert sim.peek() == 9.0


def test_pending_count_ignores_cancelled():
    sim = Simulator()
    keep = sim.schedule(1.0, lambda: None)
    drop = sim.schedule(2.0, lambda: None)
    drop.cancel()
    assert sim.pending_count() == 1
    del keep


def test_events_executed_counter():
    sim = Simulator()
    for i in range(4):
        sim.schedule(float(i + 1), lambda: None)
    sim.run()
    assert sim.events_executed == 4


def test_rng_streams_are_deterministic():
    a = Simulator(seed=7)
    b = Simulator(seed=7)
    assert [a.rng("x").random() for _ in range(5)] == [
        b.rng("x").random() for _ in range(5)
    ]


def test_rng_streams_are_independent():
    sim = Simulator(seed=7)
    first = [sim.rng("x").random() for _ in range(3)]
    # Drawing from another stream must not perturb the first.
    sim2 = Simulator(seed=7)
    sim2.rng("y").random()
    second = [sim2.rng("x").random() for _ in range(3)]
    assert first == second


def test_rng_different_seeds_differ():
    assert Simulator(seed=1).rng("x").random() != Simulator(seed=2).rng("x").random()


def test_args_passed_to_callback():
    sim = Simulator()
    got = []
    sim.schedule(1.0, lambda a, b: got.append((a, b)), 1, "two")
    sim.run()
    assert got == [(1, "two")]
