"""Tests for rate controllers (fixed, ARF, SNR-driven)."""

import pytest

from repro.channel import RadioEnvironment
from repro.node import ArfController, FixedRate, SnrRateController


# ----------------------------------------------------------------------
# FixedRate
# ----------------------------------------------------------------------
def test_fixed_rate_default_and_table():
    ctrl = FixedRate(11.0, {"far": 1.0})
    assert ctrl.rate_for("near") == 11.0
    assert ctrl.rate_for("far") == 1.0
    ctrl.set_rate("near", 5.5)
    assert ctrl.rate_for("near") == 5.5


def test_fixed_rate_ignores_feedback():
    ctrl = FixedRate(11.0)
    for _ in range(100):
        ctrl.on_exchange("x", False, 1)
    assert ctrl.rate_for("x") == 11.0


# ----------------------------------------------------------------------
# ARF
# ----------------------------------------------------------------------
def fail(ctrl, dst, n=1):
    for _ in range(n):
        ctrl.on_exchange(dst, False, 1)


def succeed(ctrl, dst, n=1):
    for _ in range(n):
        ctrl.on_exchange(dst, True, 1)


def test_arf_starts_at_highest():
    assert ArfController().rate_for("x") == 11.0


def test_arf_start_rate_override():
    assert ArfController(start_mbps=2.0).rate_for("x") == 2.0


def test_arf_steps_down_after_two_failures():
    ctrl = ArfController(down_threshold=2)
    fail(ctrl, "x", 1)
    assert ctrl.rate_for("x") == 11.0  # one failure is not enough
    fail(ctrl, "x", 1)
    assert ctrl.rate_for("x") == 5.5


def test_arf_success_resets_failure_streak():
    ctrl = ArfController(down_threshold=2)
    fail(ctrl, "x", 1)
    succeed(ctrl, "x", 1)
    fail(ctrl, "x", 1)
    assert ctrl.rate_for("x") == 11.0


def test_arf_probes_up_after_success_run():
    ctrl = ArfController(start_mbps=5.5, up_threshold=10)
    succeed(ctrl, "x", 9)
    assert ctrl.rate_for("x") == 5.5
    succeed(ctrl, "x", 1)
    assert ctrl.rate_for("x") == 11.0


def test_arf_failed_probe_falls_straight_back():
    ctrl = ArfController(start_mbps=5.5, up_threshold=10, down_threshold=2)
    succeed(ctrl, "x", 10)  # probe to 11
    fail(ctrl, "x", 1)  # single failure on probe
    assert ctrl.rate_for("x") == 5.5


def test_arf_successful_probe_sticks():
    ctrl = ArfController(start_mbps=5.5, up_threshold=10)
    succeed(ctrl, "x", 10)
    succeed(ctrl, "x", 1)
    fail(ctrl, "x", 1)  # one ordinary failure after the probe survived
    assert ctrl.rate_for("x") == 11.0


def test_arf_floor_and_ceiling():
    ctrl = ArfController()
    fail(ctrl, "x", 50)
    assert ctrl.rate_for("x") == 1.0  # cannot go below the floor
    succeed(ctrl, "x", 500)
    assert ctrl.rate_for("x") == 11.0  # cannot exceed the ceiling


def test_arf_per_destination_state():
    ctrl = ArfController(down_threshold=2)
    fail(ctrl, "bad", 2)
    assert ctrl.rate_for("bad") == 5.5
    assert ctrl.rate_for("good") == 11.0


def test_arf_exchange_with_attempts_expands_history():
    # on_exchange(success=True, attempts=3) == 2 failures then success.
    ctrl = ArfController(down_threshold=2)
    ctrl.on_exchange("x", True, 3)
    assert ctrl.rate_for("x") == 5.5  # the two failures stepped it down


def test_arf_validation():
    with pytest.raises(ValueError):
        ArfController(rates=[])
    with pytest.raises(ValueError):
        ArfController(up_threshold=0)
    with pytest.raises(ValueError):
        ArfController(start_mbps=3.3)  # not in table


def test_arf_rate_change_counter():
    ctrl = ArfController(down_threshold=1)
    fail(ctrl, "x", 3)
    assert ctrl.rate_changes == 3


# ----------------------------------------------------------------------
# SNR controller
# ----------------------------------------------------------------------
def test_snr_controller_picks_by_link_quality():
    env = RadioEnvironment()
    env.override_snr("ap", "near", 40.0)
    env.override_snr("ap", "far", 1.0)
    ctrl = SnrRateController(env, "ap")
    assert ctrl.rate_for("near") == 11.0
    assert ctrl.rate_for("far") == 1.0


def test_snr_controller_custom_rates():
    env = RadioEnvironment()
    env.override_snr("ap", "x", 40.0)
    ctrl = SnrRateController(env, "ap", rates=[6.0, 54.0])
    assert ctrl.rate_for("x") == 54.0
