"""Tests for trace records, sniffing, synthesis and analysis."""

import statistics

import pytest

from repro.node import Cell
from repro.traces import (
    BusyInterval,
    ChannelSniffer,
    DormTraceConfig,
    PAPER_WORKSHOP_MIXES,
    TraceRecord,
    WorkshopTraceConfig,
    busy_intervals,
    bytes_by_rate,
    duration_us,
    generate_dorm_trace,
    generate_workshop_trace,
    heaviest_user_fractions,
    rate_fractions,
    total_bytes,
)


def rec(t, station="u", size=1000, rate=11.0, direction="down"):
    return TraceRecord(t, station, size, rate, direction)


# ----------------------------------------------------------------------
# records
# ----------------------------------------------------------------------
def test_totals_and_duration():
    records = [rec(0.0), rec(10.0, size=500), rec(20.0)]
    assert total_bytes(records) == 2500
    assert duration_us(records) == 20.0
    assert duration_us([]) == 0.0


# ----------------------------------------------------------------------
# rate fractions (Figure 1 statistic)
# ----------------------------------------------------------------------
def test_rate_fractions():
    records = [rec(0, rate=1.0, size=300), rec(1, rate=11.0, size=700)]
    fractions = rate_fractions(records)
    assert fractions[1.0] == pytest.approx(0.3)
    assert fractions[11.0] == pytest.approx(0.7)
    assert bytes_by_rate(records) == {1.0: 300, 11.0: 700}


def test_rate_fractions_empty():
    assert rate_fractions([]) == {}


# ----------------------------------------------------------------------
# busy intervals (Figure 5 statistic)
# ----------------------------------------------------------------------
def test_busy_interval_threshold():
    # 4 Mbps over 1 s = 500000 bytes.
    quiet = [rec(t * 1e5, size=10_000) for t in range(10)]  # 0.8 Mbps
    busy = [rec(1e6 + t * 1e5, size=60_000) for t in range(10)]  # 4.8 Mbps
    intervals = busy_intervals(quiet + busy, threshold_mbps=4.0)
    assert len(intervals) == 1
    assert intervals[0].index == 1
    assert intervals[0].throughput_mbps == pytest.approx(4.8)


def test_heaviest_user_fraction():
    records = [
        rec(0.0, station="a", size=600_000),
        rec(1000.0, station="b", size=200_000),
    ]
    intervals = busy_intervals(records, threshold_mbps=4.0)
    assert intervals[0].heaviest_station == "a"
    assert intervals[0].heaviest_fraction == pytest.approx(0.75)
    assert intervals[0].active_stations == 2
    assert heaviest_user_fractions(records) == [pytest.approx(0.75)]


def test_busy_interval_width_validation():
    with pytest.raises(ValueError):
        busy_intervals([], width_us=0.0)


# ----------------------------------------------------------------------
# workshop generator
# ----------------------------------------------------------------------
def test_workshop_trace_matches_configured_mix():
    config = WorkshopTraceConfig(
        session="WS-2", total_bytes=10_000_000, n_users=15
    )
    records = generate_workshop_trace(config, seed=3)
    fractions = rate_fractions(records)
    for rate, target in PAPER_WORKSHOP_MIXES["WS-2"].items():
        assert fractions[rate] == pytest.approx(target, abs=0.02)


def test_workshop_trace_sorted_and_within_duration():
    config = WorkshopTraceConfig(total_bytes=1_000_000, duration_s=60.0)
    records = generate_workshop_trace(config, seed=1)
    times = [r.time_us for r in records]
    assert times == sorted(times)
    assert times[-1] <= 60.0 * 1e6


def test_workshop_custom_mix_and_validation():
    config = WorkshopTraceConfig(
        session="custom", total_bytes=1_000_000,
        rate_mix={1.0: 0.5, 11.0: 0.5},
    )
    fractions = rate_fractions(generate_workshop_trace(config, seed=1))
    assert set(fractions) == {1.0, 11.0}
    with pytest.raises(ValueError):
        generate_workshop_trace(
            WorkshopTraceConfig(session="nope"), seed=1
        )
    with pytest.raises(ValueError):
        generate_workshop_trace(
            WorkshopTraceConfig(rate_mix={1.0: 0.4}), seed=1
        )


def test_workshop_deterministic():
    config = WorkshopTraceConfig(total_bytes=500_000)
    a = generate_workshop_trace(config, seed=9)
    b = generate_workshop_trace(config, seed=9)
    assert a == b


# ----------------------------------------------------------------------
# dorm generator (Figure 5 shape)
# ----------------------------------------------------------------------
def test_dorm_trace_reproduces_paper_shape():
    records = generate_dorm_trace(DormTraceConfig(duration_s=24 * 3600), seed=2)
    fractions = heaviest_user_fractions(records)
    intervals = busy_intervals(records)
    assert len(intervals) > 100
    # Majority share on average, rarely solo, mostly multi-user.
    assert statistics.mean(fractions) > 0.5
    solo = sum(1 for f in fractions if f > 0.999) / len(fractions)
    assert solo < 0.25
    multi = sum(1 for i in intervals if i.active_stations > 1) / len(intervals)
    assert multi > 0.7


def test_dorm_trace_heavy_sessions_do_not_stack():
    config = DormTraceConfig(duration_s=2 * 3600, heavy_sessions=40)
    records = generate_dorm_trace(config, seed=1)
    heavy_per_second = {}
    for r in records:
        if r.station == "heavy":
            second = int(r.time_us // 1e6)
            heavy_per_second[second] = heavy_per_second.get(second, 0) + r.size_bytes
    max_mbps = max(b * 8 / 1e6 for b in heavy_per_second.values())
    assert max_mbps < 4.0  # a single laptop can't exceed its TCP ceiling


# ----------------------------------------------------------------------
# live sniffer
# ----------------------------------------------------------------------
def test_sniffer_captures_live_cell_traffic():
    cell = Cell(seed=1)
    sniffer = ChannelSniffer(cell.channel)
    station = cell.add_station("n1", rate_mbps=11.0)
    cell.tcp_flow(station, direction="down")
    cell.run(seconds=1.0)
    assert sniffer.records
    down = [r for r in sniffer.records if r.direction == "down"]
    up = [r for r in sniffer.records if r.direction == "up"]
    assert down and up  # data down, TCP acks up
    assert all(r.station == "n1" for r in sniffer.records)
    assert all(r.rate_mbps == 11.0 for r in down)
    # Sniffed downlink bytes must match the flow's delivered bytes
    # closely (no losses configured).
    delivered = cell.flows[0].stats.bytes_delivered
    sniffed = sum(r.size_bytes for r in down)
    assert sniffed >= delivered


def test_sniffer_ignores_acks_and_counts_collisions():
    cell = Cell(seed=2)
    sniffer = ChannelSniffer(cell.channel)
    for i in range(3):
        st = cell.add_station(f"n{i}", rate_mbps=11.0)
        cell.tcp_flow(st, direction="up")
    cell.run(seconds=2.0)
    # With three saturated uplinks some collisions must have occurred.
    assert sniffer.corrupted_frames > 0
    # 14-byte MAC ACK control frames never appear as records.
    assert all(r.size_bytes > 14 for r in sniffer.records)
