"""Tests for the broadcast medium: carrier, collisions, delivery."""

import pytest

from repro.channel import Channel, BernoulliLoss
from repro.mac.frames import Frame, FrameType
from repro.sim import Simulator


class RecordingListener:
    """Minimal ChannelListener that logs everything."""

    def __init__(self, address):
        self.address = address
        self.busy_events = []
        self.idle_events = []
        self.frames = []  # (frame, corrupted)

    def on_busy(self, busy_start):
        self.busy_events.append(busy_start)

    def on_idle(self, idle_start):
        self.idle_events.append(idle_start)

    def on_frame_end(self, frame, corrupted):
        self.frames.append((frame, corrupted))


def data_frame(src, dst, size=1500, rate=11.0):
    return Frame(FrameType.DATA, src, dst, size, rate)


def setup(n_listeners=3, loss=None):
    sim = Simulator(seed=1)
    channel = Channel(sim, loss)
    listeners = [RecordingListener(f"n{i}") for i in range(n_listeners)]
    for listener in listeners:
        channel.attach(listener)
    return sim, channel, listeners


def test_busy_idle_transitions():
    sim, channel, (a, b, c) = setup()
    assert not channel.busy
    channel.transmit(data_frame("n0", "n1"), 100.0)
    assert channel.busy
    assert a.busy_events == [0.0] and b.busy_events == [0.0]
    sim.run()
    assert not channel.busy
    assert b.idle_events == [100.0]


def test_clean_frame_delivered_to_destination_only_uncorrupted():
    sim, channel, (a, b, c) = setup()
    frame = data_frame("n0", "n1")
    channel.transmit(frame, 100.0)
    sim.run()
    assert (frame, False) in b.frames
    assert (frame, False) in c.frames  # observers see it too
    assert all(f is not frame for f, _ in a.frames)  # sender excluded


def test_overlapping_transmissions_collide():
    sim, channel, (a, b, c) = setup()
    f1 = data_frame("n0", "n2")
    f2 = data_frame("n1", "n2")
    channel.transmit(f1, 100.0)
    sim.run(until=50.0)
    channel.transmit(f2, 100.0)
    sim.run()
    received = {f: corrupted for f, corrupted in c.frames}
    assert received[f1] is True
    assert received[f2] is True


def test_sequential_transmissions_do_not_collide():
    sim, channel, (a, b, c) = setup()
    f1 = data_frame("n0", "n2")
    channel.transmit(f1, 100.0)
    sim.run()  # f1 finished
    f2 = data_frame("n1", "n2")
    channel.transmit(f2, 100.0)
    sim.run()
    received = {f: corrupted for f, corrupted in c.frames}
    assert received[f1] is False
    assert received[f2] is False


def test_three_way_collision_corrupts_all():
    sim, channel, listeners = setup(4)
    frames = [data_frame(f"n{i}", "n3") for i in range(3)]
    for frame in frames:
        channel.transmit(frame, 200.0)
    sim.run()
    received = {f: c for f, c in listeners[3].frames}
    assert all(received[f] for f in frames)


def test_collided_sender_is_deaf_to_peer_frame():
    # Half duplex: a station transmitting during the overlap must not
    # observe the other (corrupted) frame — it retries after DIFS, not
    # EIFS, like real silicon that decoded nothing.
    sim, channel, (a, b, c) = setup()
    f1 = data_frame("n0", "n2")
    f2 = data_frame("n1", "n2")
    channel.transmit(f1, 100.0)
    channel.transmit(f2, 100.0)
    sim.run()
    assert a.frames == []  # n0 heard nothing
    assert b.frames == []  # n1 heard nothing
    assert len(c.frames) == 2


def test_loss_model_corrupts_only_destination_view():
    sim, channel, (a, b, c) = setup(loss=BernoulliLoss(1.0))
    frame = data_frame("n0", "n1")
    channel.transmit(frame, 100.0)
    sim.run()
    assert (frame, True) in b.frames  # destination sees corruption
    assert (frame, False) in c.frames  # observer decoded it fine


def test_busy_fraction_accounts_transmissions():
    sim, channel, listeners = setup()
    channel.transmit(data_frame("n0", "n1"), 100.0)
    sim.run(until=200.0)
    assert channel.busy_fraction() == pytest.approx(0.5)


def test_busy_fraction_with_inflight_transmission():
    sim, channel, listeners = setup()
    channel.transmit(data_frame("n0", "n1"), 1000.0)
    sim.run(until=100.0)
    assert channel.busy_fraction() == pytest.approx(1.0)


def test_attach_duplicate_listener_rejected():
    sim, channel, listeners = setup(1)
    with pytest.raises(ValueError):
        channel.attach(listeners[0])


def test_transmit_rejects_nonpositive_duration():
    sim, channel, listeners = setup()
    with pytest.raises(ValueError):
        channel.transmit(data_frame("n0", "n1"), 0.0)


def test_sniffer_sees_every_frame_with_collision_flag():
    sim, channel, listeners = setup()
    seen = []
    channel.add_sniffer(
        lambda f, dest_corr, collided, start, end: seen.append(
            (f, dest_corr, collided)
        )
    )
    f1 = data_frame("n0", "n1")
    channel.transmit(f1, 100.0)
    sim.run()
    f2 = data_frame("n0", "n2")
    f3 = data_frame("n1", "n2")
    channel.transmit(f2, 100.0)
    channel.transmit(f3, 100.0)
    sim.run()
    flags = {f: (d, c) for f, d, c in seen}
    assert flags[f1] == (False, False)
    assert flags[f2] == (True, True)
    assert flags[f3] == (True, True)


def test_capture_rule_can_rescue_a_frame():
    sim, channel, (a, b, c) = setup()
    f1 = data_frame("n0", "n2")
    f2 = data_frame("n1", "n2")
    channel.capture_rule = lambda txs: next(
        t for t in txs if t.frame is f1
    )
    channel.transmit(f1, 100.0)
    channel.transmit(f2, 100.0)
    sim.run()
    received = {f: corr for f, corr in c.frames}
    assert received[f1] is False  # captured
    assert received[f2] is True
