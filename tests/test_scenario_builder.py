"""Builder semantics: timelines actually change the running cell."""

import pytest

from repro.scenario import (
    FlowSpec,
    JoinEvent,
    LeaveEvent,
    RateSwitchEvent,
    ScenarioRuntime,
    ScenarioSpec,
    StationSpec,
    TrafficOffEvent,
    TrafficOnEvent,
    run_spec,
)


def make_spec(**overrides):
    kwargs = dict(
        name="t",
        stations=(StationSpec("a", rate_mbps=11.0),),
        flows=(FlowSpec(station="a", kind="udp", direction="down",
                        rate_mbps=6.0),),
        seconds=1.0,
        seed=1,
    )
    kwargs.update(overrides)
    return ScenarioSpec(**kwargs)


def test_join_adds_a_station_mid_run():
    spec = make_spec(
        timeline=(
            JoinEvent(
                at_s=0.4,
                station=StationSpec("late", rate_mbps=1.0),
                flows=(FlowSpec(station="late", kind="udp",
                                direction="down", rate_mbps=6.0),),
            ),
        ),
    )
    runtime = ScenarioRuntime(spec)
    assert "late" not in runtime.cell.stations
    runtime.run()
    assert "late" in runtime.cell.stations
    assert runtime.timeline_fired == 1
    thr = runtime.cell.station_throughputs_mbps()
    assert thr["late"] > 0.0
    # The latecomer had ~60% of the window; the incumbent got more.
    assert thr["a"] > thr["late"]


def test_leave_quiesces_traffic():
    half = run_spec(
        make_spec(timeline=(LeaveEvent(at_s=0.5, station="a"),))
    )
    full = run_spec(make_spec())
    assert half.timeline_fired == 1
    assert 0.0 < half.throughput_mbps["a"] < 0.7 * full.throughput_mbps["a"]


def test_leave_truly_disassociates_the_station():
    spec = make_spec(
        flows=(FlowSpec(station="a", kind="tcp", direction="up"),),
        timeline=(LeaveEvent(at_s=0.5, station="a"),),
    )
    runtime = ScenarioRuntime(spec)
    runtime.run()
    cell = runtime.cell
    handle = cell.flows[0]
    # The application was clamped before teardown: nothing new offered.
    assert handle.sender.app_limit == handle.sender.snd_nxt
    # ...and the station is gone from every layer: cell, AP scheduler,
    # channel.  (In-flight data is abandoned, not drained — a vanished
    # laptop cannot ACK.)
    assert "a" not in cell.stations
    assert not cell.scheduler.is_associated("a")
    assert cell.scheduler.backlog("a") == 0
    assert all(lis.address != "a" for lis in cell.channel.listeners)


def test_rejoin_revives_the_station_with_fresh_flows():
    from repro.scenario import RejoinEvent

    spec = make_spec(
        seconds=1.5,
        timeline=(
            LeaveEvent(at_s=0.5, station="a"),
            RejoinEvent(at_s=1.0, station="a"),
        ),
    )
    first = run_spec(spec)
    assert first.timeline_fired == 2
    # The restart runs under its own @r1 identity and actually delivers.
    assert sorted(first.flow_throughput_mbps) == [
        "a/udp-down", "a/udp-down@r1",
    ]
    assert first.flow_throughput_mbps["a/udp-down@r1"] > 0.0
    # The rejoined station is fully associated again...
    runtime = ScenarioRuntime(spec)
    runtime.run()
    assert "a" in runtime.cell.stations
    assert runtime.cell.scheduler.is_associated("a")
    # ...and the leave/rejoin cycle is deterministic end to end.
    second = run_spec(spec)
    assert first.throughput_mbps == second.throughput_mbps
    assert first.events_executed == second.events_executed
    assert first.events_by_category == second.events_by_category


def test_rate_switch_changes_both_directions():
    spec = make_spec(
        timeline=(RateSwitchEvent(at_s=0.5, station="a", rate_mbps=1.0),),
    )
    runtime = ScenarioRuntime(spec)
    runtime.run()
    assert runtime.station_rates_mbps() == {"a": 1.0}
    assert runtime.cell.ap.rate_controller.rate_for("a") == 1.0


def test_rate_switch_slows_goodput():
    fast = run_spec(make_spec(seconds=2.0))
    switched = run_spec(
        make_spec(
            seconds=2.0,
            timeline=(
                RateSwitchEvent(at_s=0.2, station="a", rate_mbps=1.0),
            ),
        )
    )
    assert switched.throughput_mbps["a"] < 0.5 * fast.throughput_mbps["a"]


def test_traffic_off_on_creates_fresh_burst_flows():
    spec = make_spec(
        seconds=1.5,
        timeline=(
            TrafficOffEvent(at_s=0.5, station="a"),
            TrafficOnEvent(at_s=1.0, station="a"),
        ),
    )
    result = run_spec(spec)
    assert result.timeline_fired == 2
    names = sorted(result.flow_throughput_mbps)
    assert names == ["a/udp-down", "a/udp-down@1"]
    assert result.flow_throughput_mbps["a/udp-down@1"] > 0.0


def test_traffic_on_after_leave_is_a_noop():
    # validate() rejects this statically, so drive the runtime directly.
    spec = make_spec()
    runtime = ScenarioRuntime(spec)
    runtime._fire(LeaveEvent(at_s=0.0, station="a"))
    runtime._fire(TrafficOnEvent(at_s=0.1, station="a"))
    assert runtime._active["a"] == []


def test_rate_switch_requires_fixed_rate_controller():
    from repro.node.rate_control import ArfController

    spec = make_spec()
    runtime = ScenarioRuntime(spec)
    runtime.cell.stations["a"].rate_controller = ArfController()
    with pytest.raises(TypeError, match="FixedRate"):
        runtime._fire(RateSwitchEvent(at_s=0.0, station="a", rate_mbps=1.0))


def test_same_spec_reproduces_identical_results():
    spec = make_spec(
        seconds=1.5,
        stations=(
            StationSpec("a", rate_mbps=11.0),
            StationSpec("b", rate_mbps=1.0),
        ),
        flows=(
            FlowSpec(station="a", kind="udp", direction="down",
                     rate_mbps=6.0),
            FlowSpec(station="b", kind="tcp", direction="up"),
        ),
        timeline=(
            TrafficOffEvent(at_s=0.5, station="a"),
            TrafficOnEvent(at_s=0.9, station="a"),
            RateSwitchEvent(at_s=1.1, station="b", rate_mbps=5.5),
        ),
    )
    first, second = run_spec(spec), run_spec(spec)
    assert first.throughput_mbps == second.throughput_mbps
    assert first.occupancy == second.occupancy
    assert first.events_executed == second.events_executed
    assert first.events_by_category == second.events_by_category


def test_builder_validates_on_construction():
    with pytest.raises(ValueError, match="unknown station"):
        ScenarioRuntime(make_spec(flows=(FlowSpec(station="ghost"),)))


def test_duplicate_flows_get_distinct_names_and_all_count():
    spec = make_spec(
        flows=(
            FlowSpec(station="a", kind="udp", direction="down",
                     rate_mbps=2.0),
            FlowSpec(station="a", kind="udp", direction="down",
                     rate_mbps=2.0),
        ),
    )
    result = run_spec(spec)
    assert sorted(result.flow_throughput_mbps) == [
        "a/udp-down", "a/udp-down#2",
    ]
    # Both flows deliver, and the per-flow view sums to the station's.
    assert all(v > 0 for v in result.flow_throughput_mbps.values())
    assert sum(result.flow_throughput_mbps.values()) == pytest.approx(
        result.throughput_mbps["a"]
    )


def test_duplicate_burst_flows_stay_distinct():
    spec = make_spec(
        seconds=1.5,
        flows=(
            FlowSpec(station="a", kind="udp", direction="down",
                     rate_mbps=2.0),
            FlowSpec(station="a", kind="udp", direction="down",
                     rate_mbps=2.0),
        ),
        timeline=(
            TrafficOffEvent(at_s=0.5, station="a"),
            TrafficOnEvent(at_s=0.8, station="a"),
        ),
    )
    result = run_spec(spec)
    assert sorted(result.flow_throughput_mbps) == [
        "a/udp-down", "a/udp-down#2",
        "a/udp-down#2@1", "a/udp-down@1",
    ]


def test_timeline_events_count_as_other_category():
    result = run_spec(
        make_spec(timeline=(TrafficOffEvent(at_s=0.5, station="a"),))
    )
    assert result.events_by_category["other"] == 1
