"""Deterministic event budgets for the ``repro perf`` matrix.

These pins are the enforcement half of the demand-driven traffic
engine: the fused path charges exactly ONE kernel event per offered
packet, and any future change that silently re-inflates event volume —
a timer that re-arms per packet, a wire that grows its transient pair
back, a scheduler that polls — shifts these exact counts and fails
tier-1.

The counts are fully deterministic (fixed seed, named RNG streams), so
exact equality is the right assertion; the failure message prints the
measured table to paste in *if the inflation is intentional and
justified in the PR description*.

The headline pin doubles as the PR's acceptance record: PR 2's
``tbr/multi/n64`` @ 0.5 s executed 2378 events; the engine brought it
to 1378 (-42%, >= the 35% target), of which 998 are traffic — one per
offered packet plus the pump's lead-in — instead of 2 * offered.
"""

import pytest

from repro.perf.scaling import PerfScenario, run_scenario

#: (scheduler, profile, stations, seconds) -> (total, per-category).
PINNED_BUDGETS = {
    ("fifo", "same", 4, 0.1): (
        398, {"traffic": 198, "mac": 100, "phy": 100, "timer": 0, "other": 0},
    ),
    ("drr", "same", 4, 0.1): (
        398, {"traffic": 198, "mac": 100, "phy": 100, "timer": 0, "other": 0},
    ),
    ("tbr", "same", 4, 0.1): (
        407, {"traffic": 198, "mac": 100, "phy": 100, "timer": 9, "other": 0},
    ),
    ("fifo", "multi", 4, 0.1): (
        258, {"traffic": 198, "mac": 30, "phy": 30, "timer": 0, "other": 0},
    ),
    ("drr", "multi", 4, 0.1): (
        258, {"traffic": 198, "mac": 30, "phy": 30, "timer": 0, "other": 0},
    ),
    ("tbr", "multi", 4, 0.1): (
        267, {"traffic": 198, "mac": 30, "phy": 30, "timer": 9, "other": 0},
    ),
    # The BENCH_perf.json headline scenario (PR 2 baseline: 2378).
    ("tbr", "multi", 64, 0.5): (
        1378, {"traffic": 998, "mac": 165, "phy": 166, "timer": 49, "other": 0},
    ),
}

PR2_HEADLINE_EVENTS = 2378


@pytest.mark.parametrize(
    "key", sorted(PINNED_BUDGETS), ids=lambda k: f"{k[0]}/{k[1]}/n{k[2]}"
)
def test_scenario_event_budget_is_pinned(key):
    scheduler, profile, stations, seconds = key
    expected_total, expected_cats = PINNED_BUDGETS[key]
    sample = run_scenario(
        PerfScenario(
            stations=stations,
            scheduler=scheduler,
            profile=profile,
            seconds=seconds,
        )
    )
    measured = (sample.events, sample.events_by_category)
    assert measured == (expected_total, expected_cats), (
        "event budget shifted — if the change is intentional, update "
        f"PINNED_BUDGETS[{key!r}] to {measured!r} and justify the new "
        "volume in the PR description"
    )


def test_headline_event_reduction_vs_pr2_baseline():
    """The acceptance criterion: >= 35% fewer kernel events on
    tbr/multi/n64 than the PR 2 two-event traffic path."""
    total, cats = PINNED_BUDGETS[("tbr", "multi", 64, 0.5)]
    assert total <= PR2_HEADLINE_EVENTS * 0.65
    # Traffic events now dominate by exactly one-per-packet, not two.
    assert cats["traffic"] < PR2_HEADLINE_EVENTS * 0.5


def test_budget_table_covers_every_category_key():
    from repro.perf.scaling import EVENT_CATEGORIES

    for _, cats in PINNED_BUDGETS.values():
        assert set(cats) == set(EVENT_CATEGORIES)


# ----------------------------------------------------------------------
# campus (ESS) event budgets: coupling cost and roam counts are pinned
# ----------------------------------------------------------------------
#: (n_channels,) -> (timeline fired, roams, total, per-category).
#: Both run the 2-cell campus family at 1.2 s with one roamer; with
#: ``n_channels=1`` the pair is co-channel, so every frame charges one
#: extra PHY event on the coupled neighbour (phy > mac — unique to
#: coupled runs); with ``n_channels=3`` the adjacency is inert and the
#: cells run at full independent throughput (phy < mac, more traffic).
CAMPUS_PINNED_BUDGETS = {
    1: (
        2, 2, 3926,
        {"traffic": 486, "mac": 1132, "phy": 2004, "timer": 300, "other": 4},
    ),
    3: (
        2, 2, 7821,
        {"traffic": 1430, "mac": 3190, "phy": 2897, "timer": 300, "other": 4},
    ),
}


@pytest.mark.parametrize(
    "n_channels", sorted(CAMPUS_PINNED_BUDGETS), ids=lambda n: f"ch{n}"
)
def test_campus_event_budget_is_pinned(n_channels):
    from repro.scenario import build_spec, run_spec

    fired, roams, total, cats = CAMPUS_PINNED_BUDGETS[n_channels]
    result = run_spec(
        build_spec(
            "campus", seconds=1.2, warmup_s=0.3, n_channels=n_channels
        )
    )
    measured = (
        result.timeline_fired,
        result.roams_fired,
        result.events_executed,
        result.events_by_category,
    )
    assert measured == (fired, roams, total, cats), (
        "campus event budget shifted — if the change is intentional, "
        f"update CAMPUS_PINNED_BUDGETS[{n_channels}] to {measured!r} "
        "and justify the new volume in the PR description"
    )


def test_coupling_charges_phy_per_neighbour():
    # The structural signature of the co-channel model: coupled media
    # replay each frame as an extra PHY event on the neighbour, so
    # only the coupled plan runs phy above mac.
    _, _, _, coupled = CAMPUS_PINNED_BUDGETS[1]
    _, _, _, separate = CAMPUS_PINNED_BUDGETS[3]
    assert coupled["phy"] > coupled["mac"]
    assert separate["phy"] < separate["mac"]
