"""Tests for ``python -m repro scenario`` (and its top-level dispatch)."""

from repro.cli import main as repro_main
from repro.scenario.cli import main


def test_list_prints_families_and_knobs(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for family in ("churn", "mobility", "bursty", "mixed"):
        assert family in out
    assert "period_s" in out  # knobs are discoverable


def test_top_level_cli_dispatches_scenario(capsys):
    assert repro_main(["scenario", "list"]) == 0
    assert "churn" in capsys.readouterr().out


def test_top_level_list_mentions_scenario(capsys):
    assert repro_main(["list"]) == 0
    assert "scenario" in capsys.readouterr().out


def test_run_with_overrides(capsys):
    rc = main(
        ["run", "mixed", "--seconds", "0.4", "--seed", "3",
         "--set", "warmup_s=0.1", "--set", "n_udp=1"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "Scenario mixed[" in out
    assert "seed 3" in out
    assert "kernel events:" in out


def test_run_unknown_family_errors(capsys):
    assert main(["run", "nonsense"]) == 2
    assert "unknown scenario family" in capsys.readouterr().err


def test_run_unknown_knob_errors(capsys):
    assert main(["run", "churn", "--set", "bogus=1"]) == 2
    err = capsys.readouterr().err
    assert "bogus" in err and "valid" in err


def test_run_rejects_flag_and_set_for_same_knob(capsys):
    rc = main(["run", "churn", "--seconds", "2", "--set", "seconds=5"])
    assert rc == 2
    assert "pick one" in capsys.readouterr().err


def test_run_invalid_spec_value_errors_cleanly(capsys):
    assert main(["run", "churn", "--seconds", "-1"]) == 2
    assert "seconds must be positive" in capsys.readouterr().err


def test_run_mistyped_knob_errors_cleanly(capsys):
    assert main(["run", "churn", "--set", "n_joiners=2.5"]) == 2
    assert capsys.readouterr().err.strip()


def test_sweep_invalid_axis_value_errors_cleanly(capsys):
    rc = main(["sweep", "churn", "--axis", "seconds=-1,-2"])
    assert rc == 2
    assert "seconds must be positive" in capsys.readouterr().err


def test_sweep_empty_axis_errors_instead_of_running_nothing(capsys):
    rc = main(["sweep", "churn", "--axis", "scheduler="])
    assert rc == 2
    assert "no values" in capsys.readouterr().err


def test_malformed_set_errors_cleanly(capsys):
    assert main(["run", "churn", "--set", "noequals"]) == 2
    assert "key=value" in capsys.readouterr().err


def test_malformed_axis_errors_cleanly(capsys):
    assert main(["sweep", "churn", "--axis", "noequals"]) == 2
    assert "key=value" in capsys.readouterr().err


def test_repeated_axis_key_errors_instead_of_dropping_values(capsys):
    rc = main(
        ["sweep", "bursty",
         "--axis", "scheduler=fifo", "--axis", "scheduler=tbr"]
    )
    assert rc == 2
    assert "twice" in capsys.readouterr().err


def test_nonpositive_interval_knobs_error_instead_of_hanging(capsys):
    assert main(["run", "mobility", "--set", "dwell_s=0"]) == 2
    assert "dwell_s must be positive" in capsys.readouterr().err
    assert main(["run", "bursty", "--set", "on_s=0"]) == 2
    assert "must be positive" in capsys.readouterr().err


def test_sweep_uses_cache(tmp_path, capsys):
    args = [
        "sweep", "bursty",
        "--axis", "scheduler=fifo,tbr",
        "--set", "seconds=0.5", "--set", "warmup_s=0.1",
        "--jobs", "1",
        "--cache-dir", str(tmp_path / "cache"),
        "--quiet",
    ]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "Scenario bursty[scheduler=fifo" in out
    assert "Scenario bursty[scheduler=tbr" in out
    assert "2 executed" in out

    assert main(args) == 0
    assert "2 cache hits" in capsys.readouterr().out


def test_sweep_rejects_axis_and_set_for_same_knob(capsys):
    rc = main(
        ["sweep", "bursty",
         "--axis", "udp_mbps=4,8", "--set", "udp_mbps=2"]
    )
    assert rc == 2
    assert "same knob" in capsys.readouterr().err


def test_sweep_rejects_bad_jobs(capsys):
    assert main(["sweep", "churn", "--jobs", "0"]) == 2
    assert "--jobs must be >= 1" in capsys.readouterr().err
