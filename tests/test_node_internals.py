"""Tests for station/AP internals: bridging, accounting, cooperation."""

import pytest

from repro.channel import PerLinkLoss
from repro.core import TbrConfig, TbrScheduler
from repro.mac import FifoTxScheduler
from repro.node import Cell
from repro.sim import us_from_s


# ----------------------------------------------------------------------
# FIFO tx scheduler details
# ----------------------------------------------------------------------
def test_fifo_tx_scheduler_capacity_and_drops():
    sched = FifoTxScheduler(capacity=2)

    class P:
        size_bytes = 100
        mac_dst = "ap"

    assert sched.enqueue(P())
    assert sched.enqueue(P())
    assert not sched.enqueue(P())
    assert sched.dropped == 1
    assert len(sched) == 2


def test_fifo_tx_scheduler_validation():
    with pytest.raises(ValueError):
        FifoTxScheduler(capacity=0)


def test_fifo_release_gate_blocks_and_wakes():
    sched = FifoTxScheduler()
    gate = {"open": False}
    sched.release_gate = lambda: gate["open"]

    class P:
        size_bytes = 100
        mac_dst = "ap"

    sched.enqueue(P())
    assert sched.dequeue() is None  # gated
    gate["open"] = True
    assert sched.dequeue() is not None


# ----------------------------------------------------------------------
# AP bridging and accounting
# ----------------------------------------------------------------------
def test_uplink_packets_bridge_to_wired_host():
    cell = Cell(seed=1)
    station = cell.add_station("n1")
    flow = cell.udp_flow(station, direction="up", rate_mbps=1.0)
    cell.run(seconds=1.0)
    assert cell.ap.uplink_packets > 50
    assert flow.stats.bytes_delivered > 0


def test_ap_counts_downlink_packets():
    cell = Cell(seed=1)
    station = cell.add_station("n1")
    cell.udp_flow(station, direction="down", rate_mbps=1.0)
    cell.run(seconds=1.0)
    assert cell.ap.downlink_packets > 50


def test_uplink_observers_called_with_estimates():
    cell = Cell(seed=1)
    station = cell.add_station("n1", rate_mbps=11.0)
    cell.udp_flow(station, direction="up", rate_mbps=1.0)
    observed = []
    cell.ap.uplink_observers.append(
        lambda sta, est, frame: observed.append((sta, est))
    )
    cell.run(seconds=0.5)
    assert observed
    expected = cell.ap.estimate_exchange_airtime(1500, 11.0)
    stations, estimates = zip(*observed)
    assert all(s == "n1" for s in stations)
    assert all(e == pytest.approx(expected) for e in estimates)


def test_oracle_retry_accounting_charges_more_when_lossy():
    def charged(oracle):
        loss = PerLinkLoss({("n1", "ap"): 0.3})
        cell = Cell(
            seed=6, scheduler="tbr", loss_model=loss,
            oracle_retry_accounting=oracle,
        )
        station = cell.add_station("n1", rate_mbps=11.0)
        cell.udp_flow(station, direction="up", rate_mbps=2.0)
        cell.run(seconds=3.0)
        return cell.scheduler.buckets["n1"].spent_us

    assert charged(True) > 1.1 * charged(False)


def test_tbr_ack_decoration_through_cell():
    config = TbrConfig(notify_clients=True, defer_hint_us=4_000.0)
    cell = Cell(seed=2, scheduler="tbr", tbr_config=config)
    station = cell.add_station("n1", rate_mbps=1.0, cooperate_with_tbr=True)
    other = cell.add_station("n2", rate_mbps=11.0, cooperate_with_tbr=True)
    cell.udp_flow(station, direction="up", rate_mbps=3.0)
    cell.udp_flow(other, direction="up", rate_mbps=6.0)
    hints = []
    original = station.mac.defer_hint_handler
    station.mac.defer_hint_handler = lambda d: (hints.append(d), original(d))
    cell.run(seconds=3.0)
    # The 1 Mbps station over-consumes, gets starved, and receives
    # defer hints piggybacked on MAC ACKs.
    assert hints
    assert all(h == 4_000.0 for h in hints)


def test_station_rx_byte_counter():
    cell = Cell(seed=1)
    station = cell.add_station("n1")
    cell.udp_flow(station, direction="down", rate_mbps=1.0)
    cell.run(seconds=1.0)
    assert station.rx_bytes > 0


def test_wired_link_budget_is_generous():
    """The backbone must never be the bottleneck in paper scenarios."""
    cell = Cell(seed=1)
    station = cell.add_station("n1")
    flow = cell.udp_flow(station, direction="down", rate_mbps=6.0)
    cell.run(seconds=2.0)
    # The WLAN (not the 100 Mbps wire) limits this: ~5.5-6 Mbps arrive.
    assert flow.throughput_mbps() > 5.0


def test_two_cells_do_not_share_state():
    a = Cell(seed=1)
    b = Cell(seed=1)
    sa = a.add_station("x")
    sb = b.add_station("x")
    a.udp_flow(sa, direction="down", rate_mbps=1.0)
    a.run(seconds=0.5)
    assert b.sim.now == 0.0
    assert b.usage.total_occupancy_us() == 0.0
    del sb
