"""Per-category event accounting in the kernel."""

import pytest

from repro.sim import EventCategory, SimulationError, Simulator


def noop():
    pass


def test_every_schedule_variant_carries_its_category():
    sim = Simulator()
    sim.schedule(1.0, noop, category=EventCategory.TRAFFIC)
    sim.schedule_at(2.0, noop, category=EventCategory.MAC)
    sim.schedule_transient(3.0, noop, category=EventCategory.PHY)
    sim.schedule_transient_at(4.0, noop, category=EventCategory.PHY)
    sim.call_soon(noop, category=EventCategory.TIMER)
    sim.schedule_many([(5.0, noop), (6.0, noop)], category=EventCategory.TRAFFIC)
    sim.schedule(7.0, noop)  # untagged -> other
    sim.run()
    assert sim.events_by_category() == {
        "other": 1,
        "traffic": 3,
        "mac": 1,
        "phy": 2,
        "timer": 1,
    }
    assert sim.events_executed == sum(sim.events_by_category().values())


def test_reschedule_overwrites_stale_category():
    sim = Simulator()
    event = sim.schedule(1.0, noop, category=EventCategory.MAC)
    sim.run(until=2.0)
    # Reuse the spent event under a different category.
    event = sim.reschedule(event, 1.0, noop, category=EventCategory.TRAFFIC)
    sim.reschedule_at(None, 4.0, noop, category=EventCategory.TIMER)
    sim.run()
    counts = sim.events_by_category()
    assert counts["mac"] == 1 and counts["traffic"] == 1 and counts["timer"] == 1


def test_recycled_transient_counts_under_new_category():
    sim = Simulator()

    def second():
        pass

    def first():
        # Recycles the very event object that is executing `first`.
        sim.schedule_transient(1.0, second, category=EventCategory.TRAFFIC)

    sim.schedule_transient(1.0, first, category=EventCategory.PHY)
    sim.run()
    counts = sim.events_by_category()
    assert counts["phy"] == 1 and counts["traffic"] == 1


def test_cancelled_events_are_not_counted():
    sim = Simulator()
    event = sim.schedule(1.0, noop, category=EventCategory.MAC)
    event.cancel()
    sim.schedule(2.0, noop, category=EventCategory.MAC)
    sim.run()
    assert sim.events_by_category()["mac"] == 1


def test_schedule_transient_at_hits_exact_timestamp():
    sim = Simulator()
    sim.schedule(0.3, noop)
    sim.run(until=0.3)
    # 0.1 + 0.2 != 0.3 in floats; the relative path would re-associate.
    target = 7_777_777.77
    times = []
    sim.schedule_transient_at(target, lambda: times.append(sim.now))
    sim.run()
    assert times == [target]
    with pytest.raises(SimulationError):
        sim.schedule_transient_at(0.0, noop)  # in the past


def test_schedule_transient_at_recycles_like_schedule_transient():
    sim = Simulator()
    for i in range(4):
        sim.schedule_transient_at(float(i + 1), noop)
    sim.run()
    before = len(sim._free)
    assert before >= 1
    event = sim.schedule_transient_at(sim.now + 1.0, noop)
    assert len(sim._free) == before - 1  # reused a pooled event object
    sim.run()
    del event
