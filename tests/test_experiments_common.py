"""Tests for experiment utilities (rendering, runners)."""

import pytest

from repro.experiments.common import (
    fmt_frac,
    fmt_mbps,
    fmt_pct,
    fmt_table,
    ratio_note,
    run_competing,
)


def test_fmt_table_alignment():
    out = fmt_table(["name", "value"], [["a", 1], ["longer", 22]])
    lines = out.splitlines()
    assert lines[0].startswith("name")
    assert "---" in lines[1]
    assert len({len(line) for line in lines}) == 1  # rectangular


def test_fmt_table_title():
    out = fmt_table(["x"], [["1"]], title="My Table")
    assert out.splitlines()[0] == "My Table"


def test_fmt_helpers():
    assert fmt_mbps(1.23456) == "1.235"
    assert fmt_frac(0.5) == "0.500"
    assert fmt_pct(0.82) == "+82%"
    assert fmt_pct(-0.061) == "-6%"


def test_ratio_note():
    note = ratio_note(2.0, 1.0)
    assert "2.000" in note and "x2.00" in note
    assert ratio_note(2.0, 0.0) == "2.000"


def test_run_competing_accepts_dict_and_list():
    a = run_competing({"alpha": 11.0}, seconds=0.5, warmup_seconds=0.0)
    assert set(a.throughput_mbps) == {"alpha"}
    b = run_competing([11.0, 11.0], seconds=0.5, warmup_seconds=0.0)
    assert set(b.throughput_mbps) == {"n1", "n2"}


def test_run_competing_udp_transport():
    res = run_competing(
        [11.0], transport="udp", udp_rate_mbps=1.0, direction="down",
        seconds=1.0, warmup_seconds=0.0,
    )
    assert res.throughput_mbps["n1"] == pytest.approx(1.0, rel=0.15)


def test_run_competing_rejects_bad_transport():
    with pytest.raises(ValueError):
        run_competing([11.0], transport="sctp", seconds=0.1)


def test_run_competing_rejects_degenerate_measurement_window():
    # A non-positive measurement window would make every throughput and
    # occupancy figure a division by zero.
    with pytest.raises(ValueError, match="measurement window"):
        run_competing([11.0], seconds=0.0)
    with pytest.raises(ValueError, match="measurement window"):
        run_competing([11.0], seconds=-1.0, warmup_seconds=3.0)
    with pytest.raises(ValueError, match="warmup_seconds"):
        run_competing([11.0], seconds=1.0, warmup_seconds=-0.5)


def test_run_competing_allows_warmup_longer_than_measurement():
    # The windows are additive (warm up, then measure), so a warm-up
    # exceeding the measurement window is valid — the golden fig8/fig9
    # runs measure 1 s after a 3 s warm-up.
    res = run_competing([11.0], seconds=0.5, warmup_seconds=1.0)
    assert res.seconds == 0.5
    assert res.total_mbps > 0


def test_competing_result_total():
    res = run_competing([11.0, 11.0], seconds=0.5, warmup_seconds=0.0)
    assert res.total_mbps == pytest.approx(sum(res.throughput_mbps.values()))
    assert res.scheduler == "fifo"
    assert res.direction == "up"
