"""Tests for ``python -m repro campaign`` (and its cli.py routing)."""

import pytest

from repro.campaign.cli import main as campaign_main
from repro.cli import main as repro_main


def test_list_names_figures_tables_and_ablations(capsys):
    assert campaign_main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig1", "fig9", "table4", "abl-retry", "abl-bg"):
        assert name in out


def test_unknown_experiment_errors(capsys):
    assert campaign_main(["nonsense"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_flag_validation():
    with pytest.raises(SystemExit):
        campaign_main(["fig2", "--jobs", "0"])
    with pytest.raises(SystemExit):
        campaign_main(["fig2", "--seconds", "0"])


def test_small_campaign_runs_and_caches(tmp_path, capsys):
    args = [
        "fig2", "--jobs", "1", "--seconds", "0.5",
        "--cache-dir", str(tmp_path / "cache"),
    ]
    assert campaign_main(args) == 0
    out = capsys.readouterr().out
    assert "Figure 2" in out
    assert "2 executed" in out
    # Re-run: same rendering, now entirely from the cache.
    assert campaign_main(args) == 0
    out = capsys.readouterr().out
    assert "Figure 2" in out
    assert "0 executed, 2 cache hits" in out
    # --force recomputes despite the warm cache.
    assert campaign_main(args + ["--force"]) == 0
    assert "2 executed, 0 cache hits" in capsys.readouterr().out


def test_no_cache_leaves_no_directory(tmp_path, capsys):
    cache_dir = tmp_path / "never-created"
    rc = campaign_main(
        ["fig2", "--jobs", "1", "--seconds", "0.5", "--quiet",
         "--cache-dir", str(cache_dir), "--no-cache"]
    )
    assert rc == 0
    assert not cache_dir.exists()
    assert "Figure 2" in capsys.readouterr().out


def test_repro_cli_routes_campaign(tmp_path, capsys):
    rc = repro_main(
        ["campaign", "fig2", "--jobs", "1", "--seconds", "0.5", "--quiet",
         "--cache-dir", str(tmp_path / "cache")]
    )
    assert rc == 0
    assert "Figure 2" in capsys.readouterr().out


def test_repro_cli_list_mentions_campaign(capsys):
    assert repro_main(["list"]) == 0
    assert "campaign" in capsys.readouterr().out


# ----------------------------------------------------------------------
# fault tolerance at the CLI surface
# ----------------------------------------------------------------------
def test_quarantine_exit_code_and_report(tmp_path, monkeypatch, capsys):
    from repro.campaign.faults import FAULTS_ENV, Fault, FaultPlan

    # Fail every job permanently: nothing simulates, so this is fast.
    monkeypatch.setenv(
        FAULTS_ENV, FaultPlan((Fault("", 0, "fail"),)).to_json()
    )
    args = [
        "fig2", "--jobs", "2", "--seconds", "0.5", "--quiet",
        "--cache-dir", str(tmp_path / "cache"),
    ]
    assert campaign_main(args) == 1
    out = capsys.readouterr().out
    assert "[fig2: not rendered — job(s) quarantined]" in out
    assert "QUARANTINE (2 job(s))" in out
    assert "ValueError" in out
    assert "2 quarantined" in out

    # --partial: same campaign, same report, but a zero exit.
    assert campaign_main(args + ["--partial"]) == 0
    assert "QUARANTINE" in capsys.readouterr().out


def test_resume_after_complete_run_is_all_cache_hits(tmp_path, capsys):
    args = [
        "fig2", "--jobs", "1", "--seconds", "0.5", "--quiet",
        "--cache-dir", str(tmp_path / "cache"),
    ]
    assert campaign_main(args) == 0
    capsys.readouterr()
    assert campaign_main(args + ["--resume"]) == 0
    out = capsys.readouterr().out
    assert "0 executed, 2 cache hits" in out
    # The campaign's manifest checkpoint exists and is complete.
    runs = list((tmp_path / "cache" / "runs").glob("*.json"))
    assert len(runs) == 1


def test_resume_without_cache_is_a_usage_error(capsys):
    assert campaign_main(["fig2", "--no-cache", "--resume"]) == 2
    assert "--resume needs the cache" in capsys.readouterr().err


def test_verify_cache_flags_and_purges_corruption(tmp_path, capsys):
    from repro.campaign.cache import ResultCache

    cache_dir = str(tmp_path / "cache")
    cache = ResultCache(cache_dir)
    cache.put("ab" + "0" * 62, {"ok": True})
    cache.put("cd" + "0" * 62, {"ok": True})
    path = cache.path_for("ab" + "0" * 62)
    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0xFF
    path.write_bytes(bytes(blob))

    assert campaign_main(["verify-cache", "--cache-dir", cache_dir]) == 1
    out = capsys.readouterr().out
    assert "2 entrie(s)" in out and "1 ok" in out and "corrupt" in out

    rc = campaign_main(["verify-cache", "--cache-dir", cache_dir, "--purge"])
    assert rc == 1
    assert "purged 1 bad entrie(s)" in capsys.readouterr().out
    assert campaign_main(["verify-cache", "--cache-dir", cache_dir]) == 0


def test_timeout_and_retries_flag_validation():
    with pytest.raises(SystemExit):
        campaign_main(["fig2", "--timeout", "0"])
    with pytest.raises(SystemExit):
        campaign_main(["fig2", "--retries", "0"])
    with pytest.raises(SystemExit):
        campaign_main(["verify-cache", "fig2"])
