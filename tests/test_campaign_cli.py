"""Tests for ``python -m repro campaign`` (and its cli.py routing)."""

import pytest

from repro.campaign.cli import main as campaign_main
from repro.cli import main as repro_main


def test_list_names_figures_tables_and_ablations(capsys):
    assert campaign_main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig1", "fig9", "table4", "abl-retry", "abl-bg"):
        assert name in out


def test_unknown_experiment_errors(capsys):
    assert campaign_main(["nonsense"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_flag_validation():
    with pytest.raises(SystemExit):
        campaign_main(["fig2", "--jobs", "0"])
    with pytest.raises(SystemExit):
        campaign_main(["fig2", "--seconds", "0"])


def test_small_campaign_runs_and_caches(tmp_path, capsys):
    args = [
        "fig2", "--jobs", "1", "--seconds", "0.5",
        "--cache-dir", str(tmp_path / "cache"),
    ]
    assert campaign_main(args) == 0
    out = capsys.readouterr().out
    assert "Figure 2" in out
    assert "2 executed" in out
    # Re-run: same rendering, now entirely from the cache.
    assert campaign_main(args) == 0
    out = capsys.readouterr().out
    assert "Figure 2" in out
    assert "0 executed, 2 cache hits" in out
    # --force recomputes despite the warm cache.
    assert campaign_main(args + ["--force"]) == 0
    assert "2 executed, 0 cache hits" in capsys.readouterr().out


def test_no_cache_leaves_no_directory(tmp_path, capsys):
    cache_dir = tmp_path / "never-created"
    rc = campaign_main(
        ["fig2", "--jobs", "1", "--seconds", "0.5", "--quiet",
         "--cache-dir", str(cache_dir), "--no-cache"]
    )
    assert rc == 0
    assert not cache_dir.exists()
    assert "Figure 2" in capsys.readouterr().out


def test_repro_cli_routes_campaign(tmp_path, capsys):
    rc = repro_main(
        ["campaign", "fig2", "--jobs", "1", "--seconds", "0.5", "--quiet",
         "--cache-dir", str(tmp_path / "cache")]
    )
    assert rc == 0
    assert "Figure 2" in capsys.readouterr().out


def test_repro_cli_list_mentions_campaign(capsys):
    assert repro_main(["list"]) == 0
    assert "campaign" in capsys.readouterr().out
