"""Dynamic-workload system tests: arrivals, departures, adaptation.

These exercise the control loops (ADJUSTRATEEVENT, ack clocking, ARF)
under changing conditions rather than steady state.
"""

import pytest

from repro.channel import PerLinkLoss
from repro.node import ArfController, Cell
from repro.sim import us_from_s


def test_rate_moves_to_survivor_when_flow_stops():
    """When one station's task ends, ADJUSTRATEEVENT hands its channel
    time to the survivor instead of idling half the cell."""
    cell = Cell(seed=3, scheduler="tbr")
    n1 = cell.add_station("n1", rate_mbps=11.0)
    n2 = cell.add_station("n2", rate_mbps=11.0)
    f1 = cell.tcp_flow(n1, direction="down")
    # n2's transfer is finite and ends early.
    f2 = cell.tcp_flow(n2, direction="down", app="task", task_bytes=1_000_000)
    cell.run(seconds=4.0)
    assert f2.stats.completed

    # Measure the survivor alone over the next window.
    cell.reset_measurements()
    cell.run(seconds=8.0)
    survivor = f1.stats.throughput_mbps(cell.measured_us)
    # Alone it should reach near the single-sender AP ceiling (~4.5),
    # not stay pinned at the two-station half share (~2.2).
    assert survivor > 3.5
    assert cell.scheduler.token_rate("n1") > 0.6


def test_late_joiner_gets_share_back():
    """A station that starts sending later still converges to its fair
    share (rates restored by the relax-toward-base mechanism)."""
    cell = Cell(seed=4, scheduler="tbr")
    n1 = cell.add_station("n1", rate_mbps=11.0)
    n2 = cell.add_station("n2", rate_mbps=11.0)
    f1 = cell.tcp_flow(n1, direction="down")
    # n1 alone for 5 s: the adjuster shifts rate toward n1.
    cell.run(seconds=5.0)
    assert cell.scheduler.token_rate("n1") > 0.6

    f2 = cell.tcp_flow(n2, direction="down")
    cell.run(seconds=12.0)
    cell.reset_measurements()
    cell.run(seconds=6.0)
    thr = cell.station_throughputs_mbps()
    assert thr["n2"] == pytest.approx(thr["n1"], rel=0.35)
    assert cell.scheduler.token_rate("n1") < 0.65
    del f1, f2


def test_arf_tracks_channel_degradation():
    """When a link's loss turns on mid-run, ARF steps the rate down and
    throughput settles instead of collapsing to retries."""
    loss = PerLinkLoss(default=0.0)
    cell = Cell(seed=5, loss_model=loss)
    arf = ArfController()
    station = cell.add_station("n1", rate_controller=arf, rate_mbps=11.0)
    flow = cell.udp_flow(station, direction="up", rate_mbps=2.0)
    cell.run(seconds=2.0)
    assert arf.rate_for("ap") == 11.0

    # Degrade: 11 Mbps frames now mostly fail, 1-2 Mbps still fine.
    # (Model a receiver moving behind a wall.)
    def degrade():
        loss.links[("n1", "ap")] = 0.9

    cell.sim.schedule(0.0, degrade)
    cell.run(seconds=3.0)
    assert arf.rate_for("ap") <= 2.0  # stepped down

    # The link is "slow but working": per-exchange failures are retried
    # at the lower rate... our loss model is rate-independent, so just
    # verify delivery continued at all.
    assert flow.stats.bytes_delivered > 0


def test_tbr_seed_robustness_uplink():
    """The headline 1vs11 uplink TBR result holds across seeds."""
    gains = []
    for seed in range(1, 6):
        totals = {}
        for scheduler in ("fifo", "tbr"):
            cell = Cell(seed=seed, scheduler=scheduler)
            n1 = cell.add_station("n1", rate_mbps=1.0)
            n2 = cell.add_station("n2", rate_mbps=11.0)
            cell.tcp_flow(n1, direction="up")
            cell.tcp_flow(n2, direction="up")
            cell.run(seconds=8.0, warmup_seconds=2.0)
            totals[scheduler] = sum(cell.station_throughputs_mbps().values())
        gains.append(totals["tbr"] / totals["fifo"] - 1.0)
    assert all(g > 0.5 for g in gains), gains


def test_many_stations_stable():
    """Eight mixed-rate stations: TBR still beats FIFO and nobody
    starves (stress the round-robin eligibility scan)."""
    rates = [1.0, 1.0, 2.0, 2.0, 5.5, 5.5, 11.0, 11.0]
    totals = {}
    per_station = {}
    for scheduler in ("fifo", "tbr"):
        cell = Cell(seed=7, scheduler=scheduler)
        for i, rate in enumerate(rates):
            st = cell.add_station(f"n{i}", rate_mbps=rate)
            cell.tcp_flow(st, direction="down")
        cell.run(seconds=10.0, warmup_seconds=2.0)
        thr = cell.station_throughputs_mbps()
        totals[scheduler] = sum(thr.values())
        per_station[scheduler] = thr
    assert totals["tbr"] > 1.3 * totals["fifo"]
    assert all(v > 0.02 for v in per_station["tbr"].values())
