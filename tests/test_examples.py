"""Smoke tests for the documented entry points under ``examples/``.

Every example script must import and run its ``main()`` cleanly — the
README and docstrings point users at them, so they cannot be allowed
to rot.  Simulated horizons are clamped (each ``Simulator.run`` call
advances at most ~0.3 simulated seconds) so the whole set stays within
the tier-1 wall budget; the numbers printed are meaningless at that
length, but every construction path still executes.
"""

import importlib.util
import pathlib
import sys

import pytest

from repro.sim.kernel import Simulator

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

#: longest simulated advance one ``run`` call may make under the clamp.
CAP_US = 300_000.0


@pytest.fixture
def short_horizons(monkeypatch):
    original = Simulator.run

    def clamped(self, until=None, max_events=None):
        if until is not None:
            until = min(until, self.now + CAP_US)
        return original(self, until=until, max_events=max_events)

    monkeypatch.setattr(Simulator, "run", clamped)


def test_every_example_is_collected():
    assert len(EXAMPLES) >= 6
    assert EXAMPLES_DIR / "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(path, short_horizons, monkeypatch, capsys):
    # argparse-based examples read sys.argv; give them a bare one.
    monkeypatch.setattr(sys, "argv", [path.name])
    spec = importlib.util.spec_from_file_location(
        f"example_{path.stem}", path
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)  # __main__ guard keeps this inert
    assert hasattr(module, "main"), f"{path.name} must define main()"
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} printed nothing"
