"""Tests for AP downlink queueing disciplines."""

import pytest

from repro.queueing import (
    ApFifoScheduler,
    ApScheduler,
    DrrScheduler,
    RoundRobinScheduler,
    StationQueue,
)


class Pkt:
    def __init__(self, station, size=1500):
        self.station = station
        self.size_bytes = size
        self.mac_dst = None


class FakeMac:
    def __init__(self):
        self.notifications = 0

    def notify_pending(self):
        self.notifications += 1


# ----------------------------------------------------------------------
# StationQueue
# ----------------------------------------------------------------------
def test_station_queue_fifo_order():
    q = StationQueue("a", 10)
    p1, p2 = Pkt("a"), Pkt("a")
    q.push(p1)
    q.push(p2)
    assert q.head() is p1
    assert q.pop() is p1
    assert q.pop() is p2


def test_station_queue_drop_tail():
    q = StationQueue("a", 2)
    assert q.push(Pkt("a"))
    assert q.push(Pkt("a"))
    assert not q.push(Pkt("a"))
    assert q.dropped == 1
    assert len(q) == 2


def test_station_queue_capacity_validation():
    with pytest.raises(ValueError):
        StationQueue("a", 0)


# ----------------------------------------------------------------------
# base ApScheduler behaviour (via RoundRobin)
# ----------------------------------------------------------------------
def test_association_splits_capacity():
    sched = RoundRobinScheduler(total_capacity=100)
    sched.associate("a")
    assert sched.queues["a"].capacity == 100
    sched.associate("b")
    assert sched.queues["a"].capacity == 50
    assert sched.queues["b"].capacity == 50
    sched.associate("c")
    assert sched.queues["a"].capacity == 33


def test_reassociation_is_idempotent():
    sched = RoundRobinScheduler()
    sched.associate("a")
    sched.associate("a")
    assert sched.stations() == ["a"]


def test_enqueue_auto_associates_and_wakes_mac():
    sched = RoundRobinScheduler()
    mac = FakeMac()
    sched.bind(mac)
    assert sched.enqueue(Pkt("new"))
    assert "new" in sched.queues
    assert mac.notifications == 1


def test_per_station_capacity_override():
    sched = RoundRobinScheduler(per_station_capacity=7)
    sched.associate("a")
    sched.associate("b")
    assert sched.queues["a"].capacity == 7


def test_backlog_and_drops_reporting():
    sched = RoundRobinScheduler(per_station_capacity=1)
    sched.enqueue(Pkt("a"))
    sched.enqueue(Pkt("a"))  # dropped
    assert sched.backlog("a") == 1
    assert sched.total_backlog() == 1
    assert sched.dropped() == 1


def test_completion_listeners_invoked():
    sched = RoundRobinScheduler()
    seen = []
    sched.completion_listeners.append(
        lambda p, a, s, n, r: seen.append((p, a, s, n, r))
    )
    pkt = Pkt("a")
    sched.on_complete(pkt, 123.0, True, 2, 11.0)
    assert seen == [(pkt, 123.0, True, 2, 11.0)]


# ----------------------------------------------------------------------
# round robin
# ----------------------------------------------------------------------
def test_round_robin_alternates():
    sched = RoundRobinScheduler()
    for station in ("a", "b"):
        sched.associate(station)
    pkts = {s: [Pkt(s) for _ in range(3)] for s in ("a", "b")}
    for i in range(3):
        for s in ("a", "b"):
            sched.enqueue(pkts[s][i])
    order = [sched.dequeue().station for _ in range(6)]
    assert order == ["a", "b", "a", "b", "a", "b"]


def test_round_robin_skips_empty_queues():
    sched = RoundRobinScheduler()
    sched.associate("a")
    sched.associate("b")
    sched.enqueue(Pkt("b"))
    assert sched.dequeue().station == "b"
    assert sched.dequeue() is None


def test_round_robin_empty():
    sched = RoundRobinScheduler()
    assert sched.dequeue() is None
    assert not sched.has_pending()


# ----------------------------------------------------------------------
# shared FIFO
# ----------------------------------------------------------------------
def test_fifo_preserves_arrival_order_across_stations():
    sched = ApFifoScheduler()
    order_in = ["a", "b", "a", "c", "b"]
    for s in order_in:
        sched.enqueue(Pkt(s))
    order_out = [sched.dequeue().station for _ in range(5)]
    assert order_out == order_in


def test_fifo_capacity_shared():
    sched = ApFifoScheduler(total_capacity=3)
    assert all(sched.enqueue(Pkt("a")) for _ in range(3))
    assert not sched.enqueue(Pkt("b"))
    assert sched.dropped() == 1
    assert sched.total_backlog() == 3
    assert sched.backlog("a") == 3
    assert sched.backlog("b") == 0


# ----------------------------------------------------------------------
# DRR
# ----------------------------------------------------------------------
def test_drr_equal_sizes_behaves_like_rr():
    sched = DrrScheduler(quantum_bytes=1500)
    for s in ("a", "b"):
        sched.associate(s)
        for _ in range(4):
            sched.enqueue(Pkt(s, 1500))
    order = [sched.dequeue().station for _ in range(8)]
    assert order.count("a") == 4 and order.count("b") == 4
    # Perfect alternation with equal packet sizes.
    assert all(x != y for x, y in zip(order, order[1:]))


def test_drr_equalizes_bytes_with_mixed_sizes():
    # a sends 1500B packets, b sends 500B packets: per byte-fairness b
    # must dequeue ~3x as many packets.
    sched = DrrScheduler(quantum_bytes=500)
    sched.associate("a")
    sched.associate("b")
    for _ in range(30):
        sched.enqueue(Pkt("a", 1500))
        sched.enqueue(Pkt("b", 500))
    bytes_out = {"a": 0, "b": 0}
    for _ in range(40):
        pkt = sched.dequeue()
        if pkt is None:
            break
        bytes_out[pkt.station] += pkt.size_bytes
    ratio = bytes_out["a"] / bytes_out["b"]
    assert 0.8 < ratio < 1.25


def test_drr_does_not_starve_large_packets():
    # Quantum smaller than the packet: credits accumulate over rounds.
    sched = DrrScheduler(quantum_bytes=100)
    sched.associate("big")
    sched.enqueue(Pkt("big", 1500))
    assert sched.dequeue().station == "big"


def test_drr_empty_queue_forfeits_deficit():
    sched = DrrScheduler(quantum_bytes=1500)
    sched.associate("a")
    sched.associate("b")
    sched.enqueue(Pkt("a", 100))
    assert sched.dequeue().station == "a"
    # a's queue is now empty; any residual deficit must not persist.
    sched.enqueue(Pkt("b", 1500))
    sched.dequeue()
    assert sched.deficit["a"] == 0.0


def test_drr_quantum_validation():
    with pytest.raises(ValueError):
        DrrScheduler(quantum_bytes=0)


def test_drr_serves_all_without_loss():
    sched = DrrScheduler(quantum_bytes=700)
    sizes = {"a": 1500, "b": 300, "c": 900}
    for s, size in sizes.items():
        sched.associate(s)
        for _ in range(5):
            sched.enqueue(Pkt(s, size))
    served = []
    while sched.has_pending():
        pkt = sched.dequeue()
        assert pkt is not None
        served.append(pkt)
    assert len(served) == 15
