"""Tests for measurement primitives and unit helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim import (
    Counter,
    IntervalAccumulator,
    Simulator,
    TimeSeries,
    TimeWeightedValue,
    WelfordStat,
    throughput_mbps,
    us_from_ms,
    us_from_s,
    s_from_us,
    ms_from_us,
    mbps_from_bytes_per_us,
)


# ----------------------------------------------------------------------
# units
# ----------------------------------------------------------------------
def test_unit_round_trips():
    assert us_from_ms(1.5) == 1500.0
    assert us_from_s(2.0) == 2_000_000.0
    assert s_from_us(500_000.0) == 0.5
    assert ms_from_us(2500.0) == 2.5


def test_throughput_mbps():
    # 1250 bytes in 1000 us = 10000 bits / 1000 us = 10 Mbps.
    assert throughput_mbps(1250, 1000.0) == pytest.approx(10.0)


def test_throughput_empty_interval_is_zero():
    assert throughput_mbps(1000, 0.0) == 0.0


def test_mbps_from_bytes_per_us():
    assert mbps_from_bytes_per_us(1.0) == 8.0


# ----------------------------------------------------------------------
# Counter
# ----------------------------------------------------------------------
def test_counter_accumulates_and_marks():
    c = Counter()
    c.add(3)
    c.add()
    assert c.value == 4
    c.mark()
    c.add(2)
    assert c.since_mark() == 2
    assert c.value == 6


# ----------------------------------------------------------------------
# TimeWeightedValue
# ----------------------------------------------------------------------
def test_time_weighted_average():
    sim = Simulator()
    v = TimeWeightedValue(sim, initial=0.0)
    sim.schedule(10.0, v.set, 4.0)
    sim.run(until=20.0)
    # 0 for 10us, 4 for 10us -> average 2.
    assert v.average() == pytest.approx(2.0)


def test_time_weighted_add_and_reset():
    sim = Simulator()
    v = TimeWeightedValue(sim, initial=1.0)
    sim.run(until=10.0)
    v.reset()
    v.add(1.0)  # value becomes 2 at t=10
    sim.run(until=20.0)
    assert v.average() == pytest.approx(2.0)
    assert v.value == 2.0


def test_time_weighted_zero_elapsed_returns_value():
    sim = Simulator()
    v = TimeWeightedValue(sim, initial=7.0)
    assert v.average() == 7.0


# ----------------------------------------------------------------------
# TimeSeries
# ----------------------------------------------------------------------
def test_time_series_basics():
    ts = TimeSeries()
    assert len(ts) == 0
    assert ts.mean() == 0.0
    assert ts.last() is None
    ts.record(1.0, 10.0)
    ts.record(2.0, 20.0)
    assert len(ts) == 2
    assert ts.values() == [10.0, 20.0]
    assert ts.mean() == 15.0
    assert ts.last() == (2.0, 20.0)


# ----------------------------------------------------------------------
# IntervalAccumulator
# ----------------------------------------------------------------------
def test_interval_accumulator_buckets():
    acc = IntervalAccumulator(width_us=1000.0)
    acc.add(100.0, 5.0)
    acc.add(900.0, 5.0)
    acc.add(1500.0, 7.0)
    assert acc.buckets() == [(0, 10.0), (1, 7.0)]
    assert acc.totals() == [10.0, 7.0]


def test_interval_accumulator_validates_width():
    with pytest.raises(ValueError):
        IntervalAccumulator(0.0)


# ----------------------------------------------------------------------
# WelfordStat
# ----------------------------------------------------------------------
def test_welford_mean_variance():
    w = WelfordStat()
    for x in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
        w.add(x)
    assert w.mean == pytest.approx(5.0)
    assert w.variance == pytest.approx(32.0 / 7.0)
    assert w.min == 2.0
    assert w.max == 9.0


def test_welford_empty_is_safe():
    w = WelfordStat()
    assert w.mean == 0.0
    assert w.variance == 0.0


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=50))
def test_welford_matches_reference(xs):
    w = WelfordStat()
    for x in xs:
        w.add(x)
    mean = sum(xs) / len(xs)
    var = sum((x - mean) ** 2 for x in xs) / (len(xs) - 1)
    assert w.mean == pytest.approx(mean, rel=1e-9, abs=1e-6)
    assert w.variance == pytest.approx(var, rel=1e-6, abs=1e-6)
    assert w.stdev == pytest.approx(math.sqrt(var), rel=1e-6, abs=1e-6)
