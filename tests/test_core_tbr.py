"""Tests for the TBR scheduler (Figure 6 event handlers)."""

import pytest

from repro.core import TbrConfig, TbrScheduler
from repro.sim import Simulator, us_from_ms


class Pkt:
    def __init__(self, station, size=1500):
        self.station = station
        self.size_bytes = size
        self.mac_dst = None


class FakeMac:
    def __init__(self):
        self.notifications = 0

    def notify_pending(self):
        self.notifications += 1


def make_tbr(sim=None, **config_kwargs):
    sim = sim if sim is not None else Simulator(seed=1)
    tbr = TbrScheduler(sim, TbrConfig(**config_kwargs))
    tbr.bind(FakeMac())
    return sim, tbr


# ----------------------------------------------------------------------
# ASSOCIATEEVENT
# ----------------------------------------------------------------------
def test_associate_creates_bucket_with_equal_rates():
    sim, tbr = make_tbr()
    tbr.associate("a")
    assert tbr.token_rate("a") == pytest.approx(1.0)
    tbr.associate("b")
    assert tbr.token_rate("a") == pytest.approx(0.5)
    assert tbr.token_rate("b") == pytest.approx(0.5)


def test_associate_grants_initial_tokens():
    sim, tbr = make_tbr(initial_tokens_us=5_000.0)
    tbr.associate("a")
    assert tbr.tokens_us("a") == 5_000.0


def test_weighted_rates():
    sim, tbr = make_tbr(weights={"gold": 3.0})
    tbr.associate("gold")
    tbr.associate("plain")
    assert tbr.token_rate("gold") == pytest.approx(0.75)
    assert tbr.token_rate("plain") == pytest.approx(0.25)


def test_config_validation():
    with pytest.raises(ValueError):
        TbrConfig(fill_interval_us=0.0)
    with pytest.raises(ValueError):
        TbrConfig(bucket_depth_us=0.0)
    with pytest.raises(ValueError):
        TbrConfig(weights={"a": 0.0})


# ----------------------------------------------------------------------
# FILLEVENT
# ----------------------------------------------------------------------
def test_fill_event_accrues_tokens():
    sim, tbr = make_tbr(fill_interval_us=10_000.0, initial_tokens_us=0.0)
    tbr.associate("a")
    tbr.associate("b")
    # Run just past the 50 ms fill so five fills have fired.
    sim.run(until=us_from_ms(50) + 1.0)
    # 50 ms at rate 0.5 -> 25 ms of channel time each.
    assert tbr.tokens_us("a") == pytest.approx(25_000.0)


def test_fill_event_wakes_mac_on_eligibility_edge():
    sim, tbr = make_tbr(fill_interval_us=10_000.0, initial_tokens_us=0.0)
    tbr.associate("a")
    tbr.enqueue(Pkt("a"))
    notifications_before = tbr.mac.notifications
    sim.run(until=us_from_ms(15))
    assert tbr.mac.notifications > notifications_before


# ----------------------------------------------------------------------
# MACTXEVENT (dequeue)
# ----------------------------------------------------------------------
def test_dequeue_only_positive_token_stations():
    sim, tbr = make_tbr(initial_tokens_us=1_000.0)
    tbr.associate("rich")
    tbr.associate("poor")
    tbr.buckets["poor"].charge(5_000.0)  # deep in debt
    tbr.enqueue(Pkt("rich"))
    tbr.enqueue(Pkt("poor"))
    first = tbr.dequeue()
    assert first.station == "rich"
    # Only the poor station remains; strict mode withholds it.
    assert tbr.dequeue() is None


def test_work_conserving_fallback_releases_least_indebted():
    sim, tbr = make_tbr(initial_tokens_us=0.0, work_conserving=True)
    tbr.associate("a")
    tbr.associate("b")
    tbr.buckets["a"].charge(10_000.0)
    tbr.buckets["b"].charge(2_000.0)
    tbr.enqueue(Pkt("a"))
    tbr.enqueue(Pkt("b"))
    pkt = tbr.dequeue()
    assert pkt.station == "b"  # least indebted
    assert tbr.borrowed_releases == 1


def test_round_robin_among_eligible():
    sim, tbr = make_tbr(initial_tokens_us=50_000.0)
    tbr.associate("a")
    tbr.associate("b")
    for _ in range(2):
        tbr.enqueue(Pkt("a"))
        tbr.enqueue(Pkt("b"))
    order = [tbr.dequeue().station for _ in range(4)]
    assert order == ["a", "b", "a", "b"]


def test_has_pending_reflects_queues():
    sim, tbr = make_tbr()
    tbr.associate("a")
    assert not tbr.has_pending()
    tbr.enqueue(Pkt("a"))
    assert tbr.has_pending()


# ----------------------------------------------------------------------
# COMPLETEEVENT
# ----------------------------------------------------------------------
def test_downlink_completion_charges_station():
    sim, tbr = make_tbr(initial_tokens_us=10_000.0)
    tbr.associate("a")
    pkt = tbr.enqueue(Pkt("a")) and tbr.dequeue()
    tbr.on_complete(pkt, 2_500.0, True, 1, 11.0)
    assert tbr.tokens_us("a") == pytest.approx(7_500.0)


def test_uplink_completion_charges_station():
    sim, tbr = make_tbr(initial_tokens_us=10_000.0)
    tbr.associate("a")
    tbr.on_uplink_complete("a", 4_000.0, payload_bytes=1500)
    assert tbr.tokens_us("a") == pytest.approx(6_000.0)


def test_uplink_from_unknown_station_auto_associates():
    sim, tbr = make_tbr()
    tbr.on_uplink_complete("newcomer", 1_000.0)
    assert "newcomer" in tbr.buckets


def test_failed_exchange_still_charged():
    # Failed packets also consume channel time (paper Section 4.2).
    sim, tbr = make_tbr(initial_tokens_us=10_000.0)
    tbr.associate("a")
    tbr.enqueue(Pkt("a"))
    pkt = tbr.dequeue()
    tbr.on_complete(pkt, 9_000.0, False, 7, 1.0)
    assert tbr.tokens_us("a") == pytest.approx(1_000.0)


# ----------------------------------------------------------------------
# ADJUSTRATEEVENT integration
# ----------------------------------------------------------------------
def test_adjust_moves_rate_from_idle_to_busy():
    sim, tbr = make_tbr(
        adjust_interval_us=100_000.0, fill_interval_us=10_000.0,
        initial_tokens_us=0.0,
    )
    tbr.associate("busy")
    tbr.associate("idle")

    # Busy station constantly spends and stays backlogged; idle one
    # does nothing and its bucket caps out.
    def spend(elapsed):
        tbr.enqueue(Pkt("busy"))
        pkt = tbr.dequeue()
        if pkt is not None:
            tbr.on_complete(pkt, elapsed * 0.6, True, 1, 11.0)

    from repro.sim import PeriodicTimer

    PeriodicTimer(sim, 10_000.0, spend).start()
    sim.run(until=us_from_ms(2000))
    assert tbr.token_rate("busy") > 0.6
    assert tbr.token_rate("idle") < 0.4
    assert sum(b.rate for b in tbr.buckets.values()) == pytest.approx(1.0)


def test_adjust_disabled_keeps_rates():
    sim, tbr = make_tbr(adjust_interval_us=0)
    tbr.associate("a")
    tbr.associate("b")
    sim.run(until=us_from_ms(500))
    assert tbr.token_rate("a") == pytest.approx(0.5)


# ----------------------------------------------------------------------
# client notification
# ----------------------------------------------------------------------
def test_defer_hint_only_when_enabled_and_starved():
    sim, tbr = make_tbr(notify_clients=True, defer_hint_us=7_000.0,
                        initial_tokens_us=1_000.0)
    tbr.associate("a")
    assert tbr.defer_hint_for("a") is None  # tokens positive
    tbr.buckets["a"].charge(2_000.0)
    assert tbr.defer_hint_for("a") == 7_000.0

    sim2, tbr2 = make_tbr(notify_clients=False)
    tbr2.associate("a")
    tbr2.buckets["a"].charge(2_000.0)
    assert tbr2.defer_hint_for("a") is None


def test_station_starved():
    sim, tbr = make_tbr(initial_tokens_us=100.0)
    tbr.associate("a")
    assert not tbr.station_starved("a")
    tbr.buckets["a"].charge(200.0)
    assert tbr.station_starved("a")


def test_stop_cancels_timers():
    sim, tbr = make_tbr()
    tbr.associate("a")
    tbr.stop()
    pending_before = sim.pending_count()
    sim.run(until=us_from_ms(100))
    # No timer kept re-arming itself.
    assert sim.pending_count() <= pending_before
